package queue

import (
	"math"
	"testing"
	"testing/quick"

	"evvo/internal/road"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func testTiming() road.SignalTiming { return road.SignalTiming{RedSec: 30, GreenSec: 30} }

// paperVin is the arrival rate measured at the second US-25 light:
// 153 vehicles/hour.
func paperVin() float64 { return VehPerHour(153) }

func mustModel(t *testing.T) *Model {
	t.Helper()
	m, err := NewModel(US25Params(), testTiming())
	if err != nil {
		t.Fatalf("NewModel: %v", err)
	}
	return m
}

func TestVehPerHour(t *testing.T) {
	if got := VehPerHour(3600); got != 1 {
		t.Fatalf("VehPerHour(3600) = %v, want 1", got)
	}
}

func TestParamsValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Params)
	}{
		{"zero vmin", func(p *Params) { p.VMinMS = 0 }},
		{"zero amax", func(p *Params) { p.AMaxMS2 = 0 }},
		{"zero spacing", func(p *Params) { p.SpacingM = 0 }},
		{"zero gamma", func(p *Params) { p.StraightRatio = 0 }},
		{"gamma above one", func(p *Params) { p.StraightRatio = 1.1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := US25Params()
			tc.mutate(&p)
			if err := p.Validate(); err == nil {
				t.Fatalf("Validate accepted %+v", p)
			}
			if _, err := NewModel(p, testTiming()); err == nil {
				t.Fatal("NewModel accepted invalid params")
			}
		})
	}
	if err := US25Params().Validate(); err != nil {
		t.Fatalf("US25Params invalid: %v", err)
	}
}

func TestNewModelRejectsBadTiming(t *testing.T) {
	if _, err := NewModel(US25Params(), road.SignalTiming{RedSec: 10, GreenSec: 0}); err == nil {
		t.Fatal("NewModel accepted zero green")
	}
}

func TestT1(t *testing.T) {
	m := mustModel(t)
	want := 30 + m.VMinMS/m.AMaxMS2 // 30 + 11.11/2.5 ≈ 34.44
	if got := m.T1(); !almost(got, want, 1e-12) {
		t.Fatalf("T1 = %v, want %v", got, want)
	}
}

func TestHeadSpeedPiecewise(t *testing.T) {
	m := mustModel(t)
	if v := m.HeadSpeed(0); v != 0 {
		t.Fatalf("HeadSpeed(0) = %v, want 0 (red)", v)
	}
	if v := m.HeadSpeed(29.9); v != 0 {
		t.Fatalf("HeadSpeed(29.9) = %v, want 0 (red)", v)
	}
	if v := m.HeadSpeed(31); !almost(v, 2.5, 1e-12) {
		t.Fatalf("HeadSpeed(31) = %v, want 2.5 (1s at a_max)", v)
	}
	if v := m.HeadSpeed(m.T1() + 5); !almost(v, m.VMinMS, 1e-12) {
		t.Fatalf("HeadSpeed past T1 = %v, want v_min %v", v, m.VMinMS)
	}
}

func TestHeadSpeedContinuousAtT1(t *testing.T) {
	m := mustModel(t)
	eps := 1e-9
	before := m.HeadSpeed(m.T1() - eps)
	after := m.HeadSpeed(m.T1() + eps)
	if !almost(before, after, 1e-6) {
		t.Fatalf("HeadSpeed discontinuous at T1: %v vs %v", before, after)
	}
}

func TestDischargeCapacityMatchesEq5(t *testing.T) {
	m := mustModel(t)
	at := 40.0 // past T1, head at v_min
	want := m.VMinMS / (m.SpacingM * m.StraightRatio)
	if got := m.DischargeCapacity(at); !almost(got, want, 1e-12) {
		t.Fatalf("DischargeCapacity = %v, want v_min/(dγ) = %v", got, want)
	}
}

func TestLeavingRatePhases(t *testing.T) {
	m := mustModel(t)
	vin := paperVin()
	if r := m.LeavingRate(10, vin); r != 0 {
		t.Fatalf("LeavingRate during red = %v, want 0", r)
	}
	// Just after green onset: ramping capacity, below saturation.
	r := m.LeavingRate(30.5, vin)
	if r <= 0 || r >= m.VMinMS/(m.SpacingM*m.StraightRatio) {
		t.Fatalf("LeavingRate(30.5) = %v, want ramping in (0, capacity)", r)
	}
	// After the queue clears: pass-through at V_in.
	clear, ok := m.QueueClearTime(vin)
	if !ok {
		t.Fatal("queue should clear at paper arrival rate")
	}
	if r := m.LeavingRate(clear+1, vin); !almost(r, vin, 1e-12) {
		t.Fatalf("LeavingRate after clear = %v, want V_in %v", r, vin)
	}
}

func TestVMSlowerThanCurrentModel(t *testing.T) {
	// Paper Fig. 5(a): the VM model takes longer to reach steady state than
	// the step model because it models the acceleration ramp.
	m := mustModel(t)
	cur, err := NewCurrentModel(US25Params(), testTiming())
	if err != nil {
		t.Fatalf("NewCurrentModel: %v", err)
	}
	vin := paperVin()
	at := 31.0 // 1 s into green
	vm := m.LeavingRate(at, vin)
	step := cur.LeavingRate(at, vin)
	if vm >= step {
		t.Fatalf("VM leaving rate %v should be below step model %v during the ramp", vm, step)
	}
	vmClear, ok1 := m.QueueClearTime(vin)
	curClear, ok2 := cur.QueueClearTime(vin)
	if !ok1 || !ok2 {
		t.Fatal("both models should clear")
	}
	if vmClear <= curClear {
		t.Fatalf("VM clear time %v should be later than current model %v", vmClear, curClear)
	}
}

func TestQueueLenBuildsDuringRed(t *testing.T) {
	m := mustModel(t)
	vin := paperVin()
	l10 := m.QueueLenM(10, vin)
	l20 := m.QueueLenM(20, vin)
	if !almost(l10, m.SpacingM*vin*10, 1e-12) {
		t.Fatalf("QueueLenM(10) = %v, want linear build %v", l10, m.SpacingM*vin*10)
	}
	if l20 <= l10 {
		t.Fatalf("queue should grow during red: %v then %v", l10, l20)
	}
}

func TestQueueLenZeroAfterClear(t *testing.T) {
	m := mustModel(t)
	vin := paperVin()
	clear, ok := m.QueueClearTime(vin)
	if !ok {
		t.Fatal("should clear")
	}
	if l := m.QueueLenM(clear+0.5, vin); l != 0 {
		t.Fatalf("QueueLenM after clear = %v, want 0", l)
	}
	if l := m.QueueLenM(59.9, vin); l != 0 {
		t.Fatalf("QueueLenM at cycle end = %v, want 0", l)
	}
}

func TestQueueLenVehicles(t *testing.T) {
	m := mustModel(t)
	vin := paperVin()
	if got, want := m.QueueLenVehicles(20, vin), m.QueueLenM(20, vin)/m.SpacingM; !almost(got, want, 1e-12) {
		t.Fatalf("QueueLenVehicles = %v, want %v", got, want)
	}
}

func TestQueueClearTimeZeroArrivals(t *testing.T) {
	m := mustModel(t)
	clear, ok := m.QueueClearTime(0)
	if !ok || clear != m.Timing.RedSec {
		t.Fatalf("QueueClearTime(0) = (%v, %v), want (%v, true)", clear, ok, m.Timing.RedSec)
	}
}

func TestQueueClearTimeOversaturated(t *testing.T) {
	m := mustModel(t)
	// Arrivals faster than v_min/d can ever discharge.
	vin := m.VMinMS/m.SpacingM + 1
	if _, ok := m.QueueClearTime(vin); ok {
		t.Fatal("oversaturated queue reported as clearing")
	}
	if _, ok := m.ZeroQueueWindow(vin); ok {
		t.Fatal("oversaturated queue reported a zero window")
	}
}

func TestQueueClearConsistentWithQueueLen(t *testing.T) {
	m := mustModel(t)
	for _, vinH := range []float64{20, 80, 153, 300, 600, 1200} {
		vin := VehPerHour(vinH)
		clear, ok := m.QueueClearTime(vin)
		if !ok {
			continue
		}
		// Just before the clear time the closed-form queue is positive;
		// at/after it is zero.
		if clear > m.Timing.RedSec+0.2 {
			if l := m.QueueLenM(clear-0.1, vin); l <= 0 {
				t.Errorf("vin=%v veh/h: queue at clear−0.1 = %v, want > 0 (clear=%v)", vinH, l, clear)
			}
		}
		if l := m.QueueLenM(clear+1e-9, vin); l != 0 {
			t.Errorf("vin=%v veh/h: queue just after clear = %v, want 0", vinH, l)
		}
	}
}

func TestQueueClearInAccelPhase(t *testing.T) {
	// Tiny arrival rate: the queue should clear while the head is still
	// accelerating (phase ii root).
	m := mustModel(t)
	vin := VehPerHour(5)
	clear, ok := m.QueueClearTime(vin)
	if !ok {
		t.Fatal("should clear")
	}
	if clear <= m.Timing.RedSec || clear > m.T1() {
		t.Fatalf("clear time %v should land in accel phase (%v, %v]", clear, m.Timing.RedSec, m.T1())
	}
}

func TestQueueClearInCruisePhase(t *testing.T) {
	// Heavier arrivals: clears after the head reaches v_min.
	m := mustModel(t)
	vin := VehPerHour(1500)
	clear, ok := m.QueueClearTime(vin)
	if !ok {
		t.Fatalf("vin=1500 veh/h should still clear (d·vin=%v < vmin=%v)", m.SpacingM*vin, m.VMinMS)
	}
	if clear <= m.T1() {
		t.Fatalf("clear time %v should be after T1 %v", clear, m.T1())
	}
}

func TestZeroQueueWindow(t *testing.T) {
	m := mustModel(t)
	vin := paperVin()
	w, ok := m.ZeroQueueWindow(vin)
	if !ok {
		t.Fatal("expected a zero-queue window")
	}
	clear, _ := m.QueueClearTime(vin)
	if w.Start != clear || w.End != m.Timing.CycleSec() {
		t.Fatalf("window = %+v, want [clear=%v, cycle=%v)", w, clear, m.Timing.CycleSec())
	}
	if !w.Contains(w.Start) || w.Contains(w.End) {
		t.Fatal("window containment should be half-open")
	}
	if w.Duration() <= 0 {
		t.Fatal("window should have positive duration")
	}
}

func TestZeroWindowsAbsClipping(t *testing.T) {
	m := mustModel(t)
	vin := paperVin()
	w, _ := m.ZeroQueueWindow(vin)
	ws := m.ZeroWindowsAbs(vin, 0, 180) // three cycles
	if len(ws) != 3 {
		t.Fatalf("got %d windows in 3 cycles, want 3: %+v", len(ws), ws)
	}
	for k, got := range ws {
		wantStart := float64(k)*60 + w.Start
		wantEnd := float64(k)*60 + w.End
		if !almost(got.Start, wantStart, 1e-9) || !almost(got.End, wantEnd, 1e-9) {
			t.Fatalf("window %d = %+v, want [%v, %v)", k, got, wantStart, wantEnd)
		}
	}
	// Clipped query starting mid-window.
	mid := w.Start + w.Duration()/2
	ws = m.ZeroWindowsAbs(vin, mid, 60)
	if len(ws) != 1 || !almost(ws[0].Start, mid, 1e-9) {
		t.Fatalf("clipped windows = %+v, want start at %v", ws, mid)
	}
	if got := m.ZeroWindowsAbs(vin, 100, 100); got != nil {
		t.Fatalf("empty range returned %+v", got)
	}
}

func TestZeroWindowsAbsWithOffset(t *testing.T) {
	p := US25Params()
	m, err := NewModel(p, road.SignalTiming{RedSec: 30, GreenSec: 30, OffsetSec: 17})
	if err != nil {
		t.Fatal(err)
	}
	vin := paperVin()
	w, _ := m.ZeroQueueWindow(vin)
	ws := m.ZeroWindowsAbs(vin, 0, 200)
	for _, got := range ws {
		into := math.Mod(got.Start-17, 60)
		if into < 0 {
			into += 60
		}
		if !almost(into, w.Start, 1e-9) && !almost(got.Start, 0, 1e-9) {
			t.Fatalf("window %+v not aligned to offset cycle (into=%v, want %v)", got, into, w.Start)
		}
	}
}

func TestGreenWindowsAbs(t *testing.T) {
	m := mustModel(t)
	ws := m.GreenWindowsAbs(0, 120)
	if len(ws) != 2 {
		t.Fatalf("got %d green windows in 2 cycles, want 2", len(ws))
	}
	if !almost(ws[0].Start, 30, 1e-9) || !almost(ws[0].End, 60, 1e-9) {
		t.Fatalf("first green window = %+v, want [30, 60)", ws[0])
	}
	if got := m.GreenWindowsAbs(10, 5); got != nil {
		t.Fatal("inverted range should return nil")
	}
}

func TestZeroWindowSubsetOfGreen(t *testing.T) {
	// T_q must always lie inside the green phase: that is the paper's whole
	// point — the feasible arrival set shrinks from green to T_q.
	m := mustModel(t)
	vin := paperVin()
	zs := m.ZeroWindowsAbs(vin, 0, 600)
	gs := m.GreenWindowsAbs(0, 600)
	for _, z := range zs {
		inside := false
		for _, g := range gs {
			if z.Start >= g.Start && z.End <= g.End {
				inside = true
				break
			}
		}
		if !inside {
			t.Fatalf("zero window %+v not inside any green window %+v", z, gs)
		}
	}
}

// Property: the closed-form queue length is never negative and is zero
// throughout the post-clear portion of the cycle.
func TestPropQueueNonNegative(t *testing.T) {
	m := mustModel(t)
	f := func(tRaw, vinRaw float64) bool {
		tt := math.Mod(math.Abs(tRaw), m.Timing.CycleSec())
		vin := VehPerHour(math.Mod(math.Abs(vinRaw), 2000))
		return m.QueueLenM(tt, vin) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// Property: queue clear time is monotone non-decreasing in arrival rate.
func TestPropClearTimeMonotoneInVin(t *testing.T) {
	m := mustModel(t)
	f := func(aRaw, bRaw float64) bool {
		a := VehPerHour(math.Mod(math.Abs(aRaw), 1000))
		b := VehPerHour(math.Mod(math.Abs(bRaw), 1000))
		if a > b {
			a, b = b, a
		}
		ca, okA := m.QueueClearTime(a)
		cb, okB := m.QueueClearTime(b)
		if !okA && okB {
			return false // lower rate fails to clear while higher clears
		}
		if !okA || !okB {
			return true
		}
		return ca <= cb+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkQueueClearTime(b *testing.B) {
	m, _ := NewModel(US25Params(), testTiming())
	vin := paperVin()
	for i := 0; i < b.N; i++ {
		m.QueueClearTime(vin)
	}
}
