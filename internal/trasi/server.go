package trasi

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"

	"evvo/internal/sim"
)

// Server exposes a Simulation over the trasi protocol. Connections are
// handled concurrently; simulation access is serialized by a mutex.
type Server struct {
	mu  sync.Mutex
	sim *sim.Simulation

	lnMu   sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	// Logf receives connection-level diagnostics; defaults to log.Printf.
	Logf func(format string, args ...any)
}

// NewServer wraps a simulation.
func NewServer(s *sim.Simulation) (*Server, error) {
	if s == nil {
		return nil, fmt.Errorf("trasi: nil simulation")
	}
	return &Server{sim: s, conns: make(map[net.Conn]struct{}), Logf: log.Printf}, nil
}

// Listen starts listening on addr (e.g. "127.0.0.1:0") and serves in the
// background. It returns the bound address.
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("trasi: listen %s: %w", addr, err)
	}
	s.lnMu.Lock()
	if s.closed {
		s.lnMu.Unlock()
		ln.Close()
		return nil, fmt.Errorf("trasi: server closed")
	}
	s.ln = ln
	s.lnMu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.lnMu.Lock()
		if s.closed {
			s.lnMu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.lnMu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
			s.lnMu.Lock()
			delete(s.conns, conn)
			s.lnMu.Unlock()
		}()
	}
}

// Close stops the listener and all connections, waiting for handlers.
func (s *Server) Close() error {
	s.lnMu.Lock()
	s.closed = true
	if s.ln != nil {
		s.ln.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.lnMu.Unlock()
	s.wg.Wait()
	return nil
}

// serveConn handles one session: Hello, then a request loop until Bye or
// disconnect.
func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	if err := s.handshake(conn); err != nil {
		if !errors.Is(err, io.EOF) {
			s.Logf("trasi: handshake with %s failed: %v", conn.RemoteAddr(), err)
		}
		return
	}
	for {
		payload, err := readFrame(conn)
		if err != nil {
			return // disconnect or corrupt stream; session over either way
		}
		resp, bye := s.handle(payload)
		if err := writeFrame(conn, resp); err != nil {
			return
		}
		if bye {
			return
		}
	}
}

func (s *Server) handshake(conn net.Conn) error {
	payload, err := readFrame(conn)
	if err != nil {
		return err
	}
	r := &reader{b: payload}
	cmd, err := r.byte1()
	if err != nil || cmd != CmdHello {
		writeFrame(conn, errorResponse(CodeBadRequest, "expected hello"))
		return fmt.Errorf("expected hello, got %v (err %v)", cmd, err)
	}
	magic, err := r.take(len(Magic))
	if err != nil || string(magic) != Magic {
		writeFrame(conn, errorResponse(CodeVersion, "bad magic"))
		return fmt.Errorf("bad magic")
	}
	ver, err := r.uint16()
	if err != nil || ver != Version {
		writeFrame(conn, errorResponse(CodeVersion, fmt.Sprintf("unsupported version %d", ver)))
		return fmt.Errorf("unsupported version %d", ver)
	}
	var b buffer
	b.byte1(statusOK)
	b.uint16(Version)
	return writeFrame(conn, b.b)
}

func errorResponse(code uint16, msg string) []byte {
	var b buffer
	b.byte1(statusError)
	b.uint16(code)
	if err := b.string2(msg); err != nil {
		// Message too long for the wire: truncate hard.
		b = buffer{}
		b.byte1(statusError)
		b.uint16(code)
		_ = b.string2(msg[:1024])
	}
	return b.b
}

// handle dispatches one request payload and returns the response and
// whether the session should end.
func (s *Server) handle(payload []byte) (resp []byte, bye bool) {
	r := &reader{b: payload}
	cmd, err := r.byte1()
	if err != nil {
		return errorResponse(CodeBadRequest, "empty request"), false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	switch cmd {
	case CmdGetTime:
		var b buffer
		b.byte1(statusOK)
		b.float64(s.sim.Time())
		return b.b, false

	case CmdStep:
		n, err := r.uint32()
		if err != nil {
			return errorResponse(CodeBadRequest, "step: missing count"), false
		}
		if n == 0 || n > 1_000_000 {
			return errorResponse(CodeBadRequest, fmt.Sprintf("step: count %d out of range", n)), false
		}
		for i := uint32(0); i < n; i++ {
			s.sim.Step()
		}
		var b buffer
		b.byte1(statusOK)
		b.float64(s.sim.Time())
		return b.b, false

	case CmdAddVehicle:
		id, err := r.string2()
		if err != nil {
			return errorResponse(CodeBadRequest, "add: missing id"), false
		}
		if err := s.sim.AddControlled(id); err != nil {
			return errorResponse(CodeRejected, err.Error()), false
		}
		return okResponse(), false

	case CmdSetSpeed:
		id, err := r.string2()
		if err != nil {
			return errorResponse(CodeBadRequest, "setspeed: missing id"), false
		}
		speed, err := r.float64()
		if err != nil {
			return errorResponse(CodeBadRequest, "setspeed: missing speed"), false
		}
		if err := s.sim.SetSpeed(id, speed); err != nil {
			return errorResponse(CodeUnknownEntity, err.Error()), false
		}
		return okResponse(), false

	case CmdGetVehicle:
		id, err := r.string2()
		if err != nil {
			return errorResponse(CodeBadRequest, "getvehicle: missing id"), false
		}
		st, err := s.sim.VehicleState(id)
		if err != nil {
			return errorResponse(CodeUnknownEntity, err.Error()), false
		}
		var b buffer
		b.byte1(statusOK)
		b.float64(st.PosM)
		b.float64(st.SpeedMS)
		b.bool1(st.Done)
		return b.b, false

	case CmdGetSignal:
		name, err := r.string2()
		if err != nil {
			return errorResponse(CodeBadRequest, "getsignal: missing name"), false
		}
		green, err := s.sim.SignalGreen(name)
		if err != nil {
			return errorResponse(CodeUnknownEntity, err.Error()), false
		}
		var b buffer
		b.byte1(statusOK)
		b.bool1(green)
		return b.b, false

	case CmdGetQueue:
		name, err := r.string2()
		if err != nil {
			return errorResponse(CodeBadRequest, "getqueue: missing name"), false
		}
		q, err := s.sim.QueueAt(name)
		if err != nil {
			return errorResponse(CodeUnknownEntity, err.Error()), false
		}
		var b buffer
		b.byte1(statusOK)
		b.uint32(uint32(q))
		return b.b, false

	case CmdVehicleCount:
		var b buffer
		b.byte1(statusOK)
		b.uint32(uint32(s.sim.VehicleCount()))
		return b.b, false

	case CmdGetTrace:
		id, err := r.string2()
		if err != nil {
			return errorResponse(CodeBadRequest, "gettrace: missing id"), false
		}
		prof, err := s.sim.Trace(id)
		if err != nil {
			return errorResponse(CodeUnknownEntity, err.Error()), false
		}
		pts := prof.Points()
		var b buffer
		b.byte1(statusOK)
		b.uint32(uint32(len(pts)))
		for _, p := range pts {
			b.float64(p.T)
			b.float64(p.Pos)
			b.float64(p.V)
		}
		if len(b.b) > MaxFrame {
			return errorResponse(CodeRejected, "trace too large for one frame"), false
		}
		return b.b, false

	case CmdGetTrips:
		trips := s.sim.Trips()
		var b buffer
		b.byte1(statusOK)
		b.uint32(uint32(len(trips)))
		for _, tr := range trips {
			if err := b.string2(tr.ID); err != nil {
				return errorResponse(CodeRejected, err.Error()), false
			}
			b.float64(tr.EnterSec)
			b.float64(tr.ExitSec)
			b.bool1(tr.Turned)
		}
		if len(b.b) > MaxFrame {
			return errorResponse(CodeRejected, "trip list too large for one frame"), false
		}
		return b.b, false

	case CmdGetCrossings:
		name, err := r.string2()
		if err != nil {
			return errorResponse(CodeBadRequest, "getcrossings: missing name"), false
		}
		n, err := s.sim.Crossings(name)
		if err != nil {
			return errorResponse(CodeUnknownEntity, err.Error()), false
		}
		var b buffer
		b.byte1(statusOK)
		b.uint32(uint32(n))
		return b.b, false

	case CmdGetBacklog:
		var b buffer
		b.byte1(statusOK)
		b.uint32(uint32(s.sim.Backlog()))
		return b.b, false

	case CmdBye:
		return okResponse(), true

	default:
		return errorResponse(CodeBadRequest, fmt.Sprintf("unknown command %d", cmd)), false
	}
}

func okResponse() []byte {
	var b buffer
	b.byte1(statusOK)
	return b.b
}
