// Package trasi implements a TraCI-style remote-control protocol for the
// microscopic simulator (internal/sim), replacing the SUMO/TraCI socket
// interface the paper's evaluation used (DESIGN.md §4).
//
// Wire format: every message is a frame — a 4-byte big-endian payload
// length followed by the payload. A request payload starts with a 1-byte
// command code; a response payload starts with a 1-byte status (OK or
// error). Strings are uint16-length-prefixed UTF-8; floats are IEEE-754
// bits in big-endian. A session begins with a Hello exchange carrying a
// protocol magic and version.
//
// The server serializes all simulation access, so multiple clients may
// share one simulation (e.g. an optimizer and a monitor).
package trasi

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Protocol constants.
const (
	// Magic opens every Hello request.
	Magic = "TRSI"
	// Version is the protocol version spoken by this implementation.
	Version uint16 = 1
	// MaxFrame bounds a frame payload; larger frames are rejected as
	// corrupt before allocation.
	MaxFrame = 1 << 20
)

// Command codes. The zero value is invalid.
const (
	cmdInvalid byte = iota
	CmdHello
	CmdGetTime
	CmdStep
	CmdAddVehicle
	CmdSetSpeed
	CmdGetVehicle
	CmdGetSignal
	CmdGetQueue
	CmdVehicleCount
	CmdGetTrace
	CmdBye
	CmdGetTrips
	CmdGetCrossings
	CmdGetBacklog
)

// Response status codes.
const (
	statusOK byte = iota
	statusError
)

// Error codes carried in error responses.
const (
	// CodeBadRequest indicates a malformed or unknown command.
	CodeBadRequest uint16 = iota + 1
	// CodeUnknownEntity indicates an unknown vehicle or signal.
	CodeUnknownEntity
	// CodeRejected indicates the simulator refused the operation.
	CodeRejected
	// CodeVersion indicates a handshake version/magic mismatch.
	CodeVersion
)

// RemoteError is an error reported by the trasi server.
type RemoteError struct {
	Code uint16
	Msg  string
}

// Error implements error.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("trasi: remote error %d: %s", e.Code, e.Msg)
}

// ErrFrameTooLarge is returned when a peer announces a frame beyond
// MaxFrame.
var ErrFrameTooLarge = errors.New("trasi: frame exceeds MaxFrame")

// writeFrame writes one length-prefixed frame.
func writeFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return ErrFrameTooLarge
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("trasi: writing frame header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("trasi: writing frame payload: %w", err)
	}
	return nil
}

// readFrame reads one length-prefixed frame.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err // EOF passthrough lets callers detect clean close
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("trasi: reading frame payload: %w", err)
	}
	return payload, nil
}

// buffer is an append-only payload builder.
type buffer struct {
	b []byte
}

func (b *buffer) byte1(v byte) { b.b = append(b.b, v) }
func (b *buffer) uint16(v uint16) {
	var tmp [2]byte
	binary.BigEndian.PutUint16(tmp[:], v)
	b.b = append(b.b, tmp[:]...)
}
func (b *buffer) uint32(v uint32) {
	var tmp [4]byte
	binary.BigEndian.PutUint32(tmp[:], v)
	b.b = append(b.b, tmp[:]...)
}
func (b *buffer) float64(v float64) {
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], math.Float64bits(v))
	b.b = append(b.b, tmp[:]...)
}
func (b *buffer) bool1(v bool) {
	if v {
		b.byte1(1)
	} else {
		b.byte1(0)
	}
}
func (b *buffer) string2(s string) error {
	if len(s) > math.MaxUint16 {
		return fmt.Errorf("trasi: string of %d bytes exceeds uint16 length prefix", len(s))
	}
	b.uint16(uint16(len(s)))
	b.b = append(b.b, s...)
	return nil
}

// reader is a consuming payload parser; all methods fail cleanly on
// truncated input.
type reader struct {
	b   []byte
	off int
}

var errTruncated = errors.New("trasi: truncated payload")

func (r *reader) take(n int) ([]byte, error) {
	if r.off+n > len(r.b) {
		return nil, errTruncated
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out, nil
}

func (r *reader) byte1() (byte, error) {
	b, err := r.take(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (r *reader) uint16() (uint16, error) {
	b, err := r.take(2)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint16(b), nil
}

func (r *reader) uint32() (uint32, error) {
	b, err := r.take(4)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(b), nil
}

func (r *reader) float64() (float64, error) {
	b, err := r.take(8)
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.BigEndian.Uint64(b)), nil
}

func (r *reader) bool1() (bool, error) {
	b, err := r.byte1()
	if err != nil {
		return false, err
	}
	return b != 0, nil
}

func (r *reader) string2() (string, error) {
	n, err := r.uint16()
	if err != nil {
		return "", err
	}
	b, err := r.take(int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// remaining reports unconsumed bytes (trailing garbage detection).
func (r *reader) remaining() int { return len(r.b) - r.off }
