package trasi

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"net"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"evvo/internal/queue"
	"evvo/internal/road"
	"evvo/internal/sim"
)

func testRoute(t *testing.T) *road.Route {
	t.Helper()
	r, err := road.NewRoute(road.RouteConfig{
		LengthM: 1000, DefaultMaxMS: 15,
		Controls: []road.Control{{
			Kind: road.ControlSignal, PositionM: 500,
			Timing: road.SignalTiming{RedSec: 30, GreenSec: 30}, Name: "sig",
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// startServer spins up a server over a fresh simulation and returns a
// connected client.
func startServer(t *testing.T, cfg sim.Config) (*Server, *Client) {
	t.Helper()
	s, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(s)
	if err != nil {
		t.Fatal(err)
	}
	srv.Logf = t.Logf
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	c, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return srv, c
}

func TestNewServerNilSim(t *testing.T) {
	if _, err := NewServer(nil); err == nil {
		t.Fatal("nil simulation accepted")
	}
}

func TestHandshakeAndTime(t *testing.T) {
	_, c := startServer(t, sim.Config{Route: testRoute(t), Seed: 1})
	tm, err := c.Time()
	if err != nil {
		t.Fatal(err)
	}
	if tm != 0 {
		t.Fatalf("initial time %v, want 0", tm)
	}
}

func TestStepAdvancesTime(t *testing.T) {
	_, c := startServer(t, sim.Config{Route: testRoute(t), Seed: 1, StepSec: 0.5})
	tm, err := c.Step(10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tm-5) > 1e-9 {
		t.Fatalf("time after 10 steps = %v, want 5", tm)
	}
}

func TestStepRejectsBadCount(t *testing.T) {
	_, c := startServer(t, sim.Config{Route: testRoute(t), Seed: 1})
	if _, err := c.Step(0); err == nil {
		t.Fatal("step 0 accepted")
	}
	var re *RemoteError
	_, err := c.Step(0)
	if !errors.As(err, &re) || re.Code != CodeBadRequest {
		t.Fatalf("want RemoteError CodeBadRequest, got %v", err)
	}
}

func TestVehicleLifecycleOverWire(t *testing.T) {
	_, c := startServer(t, sim.Config{Route: testRoute(t), Seed: 1, StepSec: 0.5})
	if err := c.AddVehicle("ev"); err != nil {
		t.Fatal(err)
	}
	if err := c.SetSpeed("ev", 12); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400; i++ {
		if _, err := c.Step(1); err != nil {
			t.Fatal(err)
		}
		if err := c.SetSpeed("ev", 12); err != nil {
			t.Fatal(err)
		}
		st, err := c.GetVehicle("ev")
		if err != nil {
			t.Fatal(err)
		}
		if st.Done {
			break
		}
	}
	st, err := c.GetVehicle("ev")
	if err != nil {
		t.Fatal(err)
	}
	if !st.Done {
		t.Fatalf("vehicle did not finish: %+v", st)
	}
	prof, err := c.GetTrace("ev")
	if err != nil {
		t.Fatal(err)
	}
	if prof.Distance() < 990 {
		t.Fatalf("trace distance %v, want ≈1000", prof.Distance())
	}
}

func TestUnknownEntityErrors(t *testing.T) {
	_, c := startServer(t, sim.Config{Route: testRoute(t), Seed: 1})
	var re *RemoteError
	if err := c.SetSpeed("ghost", 5); !errors.As(err, &re) || re.Code != CodeUnknownEntity {
		t.Fatalf("SetSpeed ghost: %v", err)
	}
	if _, err := c.GetVehicle("ghost"); !errors.As(err, &re) {
		t.Fatalf("GetVehicle ghost: %v", err)
	}
	if _, err := c.QueueAt("ghost"); !errors.As(err, &re) {
		t.Fatalf("QueueAt ghost: %v", err)
	}
	if _, err := c.GetTrace("ghost"); !errors.As(err, &re) {
		t.Fatalf("GetTrace ghost: %v", err)
	}
	if _, err := c.SignalGreen("ghost"); !errors.As(err, &re) {
		t.Fatalf("SignalGreen ghost: %v", err)
	}
}

func TestSignalAndQueueQueries(t *testing.T) {
	_, c := startServer(t, sim.Config{
		Route: testRoute(t), Seed: 2,
		Arrivals: queue.ConstantRate(queue.VehPerHour(600)),
	})
	green, err := c.SignalGreen("sig")
	if err != nil {
		t.Fatal(err)
	}
	if green {
		t.Fatal("signal should start red")
	}
	// Advance to 88 s: inside the second red phase, by which time early
	// arrivals have reached the light at 500 m and queued.
	if _, err := c.Step(176); err != nil {
		t.Fatal(err)
	}
	q, err := c.QueueAt("sig")
	if err != nil {
		t.Fatal(err)
	}
	if q == 0 {
		t.Fatal("no queue 28 s into the second red phase with steady arrivals")
	}
	n, err := c.VehicleCount()
	if err != nil {
		t.Fatal(err)
	}
	if n < q {
		t.Fatalf("vehicle count %d below queue %d", n, q)
	}
}

func TestDuplicateVehicleRejected(t *testing.T) {
	_, c := startServer(t, sim.Config{Route: testRoute(t), Seed: 1})
	if err := c.AddVehicle("ev"); err != nil {
		t.Fatal(err)
	}
	var re *RemoteError
	if err := c.AddVehicle("ev"); !errors.As(err, &re) || re.Code != CodeRejected {
		t.Fatalf("duplicate add: %v", err)
	}
}

func TestTwoClientsShareSimulation(t *testing.T) {
	srv, c1 := startServer(t, sim.Config{Route: testRoute(t), Seed: 1, StepSec: 0.5})
	_ = srv
	// Second client on the same server.
	addr := srv.ln.Addr().String()
	c2, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, err := c1.Step(10); err != nil {
		t.Fatal(err)
	}
	tm, err := c2.Time()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tm-5) > 1e-9 {
		t.Fatalf("second client sees t=%v, want 5", tm)
	}
}

func TestBadMagicRejected(t *testing.T) {
	s, err := sim.New(sim.Config{Route: testRoute(t), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(s)
	if err != nil {
		t.Fatal(err)
	}
	srv.Logf = t.Logf
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var b buffer
	b.byte1(CmdHello)
	b.b = append(b.b, "NOPE"...)
	b.uint16(Version)
	if err := writeFrame(conn, b.b); err != nil {
		t.Fatal(err)
	}
	resp, err := readFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	r := &reader{b: resp}
	status, _ := r.byte1()
	code, _ := r.uint16()
	if status != statusError || code != CodeVersion {
		t.Fatalf("bad magic response status=%d code=%d", status, code)
	}
}

func TestWrongVersionRejectedByClient(t *testing.T) {
	// A fake server that answers Hello with a wrong version.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		if _, err := readFrame(conn); err != nil {
			return
		}
		var b buffer
		b.byte1(statusOK)
		b.uint16(Version + 7)
		writeFrame(conn, b.b)
	}()
	if _, err := Dial(ln.Addr().String()); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("want version error, got %v", err)
	}
}

func TestOversizeFrameRejected(t *testing.T) {
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
	buf.Write(hdr[:])
	if _, err := readFrame(&buf); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("want ErrFrameTooLarge, got %v", err)
	}
	if err := writeFrame(io.Discard, make([]byte, MaxFrame+1)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("write oversize: %v", err)
	}
}

func TestTruncatedFrame(t *testing.T) {
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 100)
	buf.Write(hdr[:])
	buf.Write([]byte("short"))
	if _, err := readFrame(&buf); err == nil {
		t.Fatal("truncated frame accepted")
	}
}

func TestUnknownCommandGetsError(t *testing.T) {
	s, err := sim.New(sim.Config{Route: testRoute(t), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(s)
	if err != nil {
		t.Fatal(err)
	}
	resp, bye := srv.handle([]byte{0xEE})
	if bye {
		t.Fatal("unknown command should not end session")
	}
	r := &reader{b: resp}
	status, _ := r.byte1()
	code, _ := r.uint16()
	if status != statusError || code != CodeBadRequest {
		t.Fatalf("status=%d code=%d", status, code)
	}
}

func TestTruncatedRequestPayloads(t *testing.T) {
	s, err := sim.New(sim.Config{Route: testRoute(t), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(s)
	if err != nil {
		t.Fatal(err)
	}
	cases := [][]byte{
		{},                                  // empty
		{CmdStep},                           // missing count
		{CmdAddVehicle, 0x00},               // truncated string length
		{CmdSetSpeed, 0x00, 0x02, 'e', 'v'}, // missing speed
	}
	for i, payload := range cases {
		resp, bye := srv.handle(payload)
		if bye {
			t.Fatalf("case %d ended session", i)
		}
		r := &reader{b: resp}
		status, _ := r.byte1()
		if status != statusError {
			t.Fatalf("case %d: status %d, want error", i, status)
		}
	}
}

func TestClientTimeout(t *testing.T) {
	// A server that accepts and then never responds.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		// Answer the handshake, then go silent.
		if _, err := readFrame(conn); err != nil {
			return
		}
		var b buffer
		b.byte1(statusOK)
		b.uint16(Version)
		writeFrame(conn, b.b)
		time.Sleep(5 * time.Second)
		conn.Close()
	}()
	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.conn.Close()
	c.Timeout = 100 * time.Millisecond
	start := time.Now()
	if _, err := c.Time(); err == nil {
		t.Fatal("silent server did not time out")
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("timeout took far longer than configured")
	}
}

func TestServerCloseStopsSessions(t *testing.T) {
	srv, c := startServer(t, sim.Config{Route: testRoute(t), Seed: 1})
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	c.Timeout = 200 * time.Millisecond
	if _, err := c.Time(); err == nil {
		t.Fatal("request succeeded after server close")
	}
}

// Property: wire primitives round-trip exactly.
func TestPropWireRoundTrip(t *testing.T) {
	f := func(u16 uint16, u32 uint32, fl float64, s string, flag bool) bool {
		if len(s) > 1000 {
			s = s[:1000]
		}
		var b buffer
		b.uint16(u16)
		b.uint32(u32)
		b.float64(fl)
		if err := b.string2(s); err != nil {
			return false
		}
		b.bool1(flag)
		r := &reader{b: b.b}
		g16, err := r.uint16()
		if err != nil || g16 != u16 {
			return false
		}
		g32, err := r.uint32()
		if err != nil || g32 != u32 {
			return false
		}
		gf, err := r.float64()
		if err != nil || (gf != fl && !(math.IsNaN(gf) && math.IsNaN(fl))) {
			return false
		}
		gs, err := r.string2()
		if err != nil || gs != s {
			return false
		}
		gb, err := r.bool1()
		if err != nil || gb != flag {
			return false
		}
		return r.remaining() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: frames round-trip through a pipe.
func TestPropFrameRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		if len(data) > 4096 {
			data = data[:4096]
		}
		var buf bytes.Buffer
		if err := writeFrame(&buf, data); err != nil {
			return false
		}
		got, err := readFrame(&buf)
		if err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRemoteErrorString(t *testing.T) {
	e := &RemoteError{Code: CodeRejected, Msg: "nope"}
	if !strings.Contains(e.Error(), "nope") {
		t.Fatalf("error string %q", e.Error())
	}
}

func TestTripsCrossingsBacklogOverWire(t *testing.T) {
	_, c := startServer(t, sim.Config{
		Route: testRoute(t), Seed: 3, StepSec: 0.5,
		Arrivals: queue.ConstantRate(queue.VehPerHour(700)),
	})
	if _, err := c.Step(1200); err != nil { // 600 s of traffic
		t.Fatal(err)
	}
	trips, err := c.Trips()
	if err != nil {
		t.Fatal(err)
	}
	if len(trips) == 0 {
		t.Fatal("no trips after 600 s of 700 veh/h")
	}
	for _, tr := range trips {
		if tr.ExitSec <= tr.EnterSec || tr.ID == "" {
			t.Fatalf("malformed trip %+v", tr)
		}
	}
	n, err := c.Crossings("sig")
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no crossings counted")
	}
	if _, err := c.Crossings("ghost"); err == nil {
		t.Fatal("unknown signal accepted")
	}
	if _, err := c.Backlog(); err != nil {
		t.Fatal(err)
	}
}

func TestManyConcurrentClients(t *testing.T) {
	srv, first := startServer(t, sim.Config{
		Route: testRoute(t), Seed: 12, StepSec: 0.5,
		Arrivals: queue.ConstantRate(queue.VehPerHour(400)),
	})
	addr := srv.ln.Addr().String()
	_ = first
	const n = 6
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for j := 0; j < 30; j++ {
				if _, err := c.Step(2); err != nil {
					errs <- err
					return
				}
				if _, err := c.VehicleCount(); err != nil {
					errs <- err
					return
				}
				if _, err := c.QueueAt("sig"); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	// All clients stepped the shared simulation: 6×30×2×0.5 s = 180 s.
	tm, err := first.Time()
	if err != nil {
		t.Fatal(err)
	}
	if tm < 179 {
		t.Fatalf("shared sim time %v, want ≈180", tm)
	}
}
