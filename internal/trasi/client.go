package trasi

import (
	"fmt"
	"net"
	"time"

	"evvo/internal/profile"
	"evvo/internal/sim"
)

// Client is a trasi protocol client. Not safe for concurrent use; open one
// client per goroutine (the server multiplexes).
type Client struct {
	conn net.Conn
	// Timeout bounds each request/response round trip (default 10 s).
	Timeout time.Duration
}

// Dial connects to a trasi server and performs the Hello handshake.
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("trasi: dial %s: %w", addr, err)
	}
	c := &Client{conn: conn, Timeout: 10 * time.Second}
	var b buffer
	b.byte1(CmdHello)
	b.b = append(b.b, Magic...)
	b.uint16(Version)
	resp, err := c.roundTrip(b.b)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("trasi: handshake: %w", err)
	}
	ver, err := resp.uint16()
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("trasi: handshake response: %w", err)
	}
	if ver != Version {
		conn.Close()
		return nil, fmt.Errorf("trasi: server speaks version %d, want %d", ver, Version)
	}
	return c, nil
}

// Close sends Bye (best effort) and closes the connection.
func (c *Client) Close() error {
	var b buffer
	b.byte1(CmdBye)
	_, _ = c.roundTrip(b.b) // the connection is going away regardless
	return c.conn.Close()
}

// roundTrip sends one request and parses the response status, returning a
// reader over the response body.
func (c *Client) roundTrip(payload []byte) (*reader, error) {
	deadline := time.Now().Add(c.Timeout)
	if err := c.conn.SetDeadline(deadline); err != nil {
		return nil, fmt.Errorf("trasi: setting deadline: %w", err)
	}
	if err := writeFrame(c.conn, payload); err != nil {
		return nil, err
	}
	resp, err := readFrame(c.conn)
	if err != nil {
		return nil, fmt.Errorf("trasi: reading response: %w", err)
	}
	r := &reader{b: resp}
	status, err := r.byte1()
	if err != nil {
		return nil, fmt.Errorf("trasi: empty response")
	}
	if status == statusOK {
		return r, nil
	}
	code, err := r.uint16()
	if err != nil {
		return nil, fmt.Errorf("trasi: malformed error response")
	}
	msg, err := r.string2()
	if err != nil {
		return nil, fmt.Errorf("trasi: malformed error response")
	}
	return nil, &RemoteError{Code: code, Msg: msg}
}

// Time returns the simulation's current time.
func (c *Client) Time() (float64, error) {
	var b buffer
	b.byte1(CmdGetTime)
	r, err := c.roundTrip(b.b)
	if err != nil {
		return 0, err
	}
	return r.float64()
}

// Step advances the simulation n ticks and returns the new time.
func (c *Client) Step(n uint32) (float64, error) {
	var b buffer
	b.byte1(CmdStep)
	b.uint32(n)
	r, err := c.roundTrip(b.b)
	if err != nil {
		return 0, err
	}
	return r.float64()
}

// AddVehicle inserts a controlled vehicle at the corridor entry.
func (c *Client) AddVehicle(id string) error {
	var b buffer
	b.byte1(CmdAddVehicle)
	if err := b.string2(id); err != nil {
		return err
	}
	_, err := c.roundTrip(b.b)
	return err
}

// SetSpeed commands a controlled vehicle's target speed.
func (c *Client) SetSpeed(id string, speed float64) error {
	var b buffer
	b.byte1(CmdSetSpeed)
	if err := b.string2(id); err != nil {
		return err
	}
	b.float64(speed)
	_, err := c.roundTrip(b.b)
	return err
}

// VehicleState is the client-side vehicle observation.
type VehicleState struct {
	PosM, SpeedMS float64
	Done          bool
}

// GetVehicle returns the state of a vehicle.
func (c *Client) GetVehicle(id string) (VehicleState, error) {
	var b buffer
	b.byte1(CmdGetVehicle)
	if err := b.string2(id); err != nil {
		return VehicleState{}, err
	}
	r, err := c.roundTrip(b.b)
	if err != nil {
		return VehicleState{}, err
	}
	var st VehicleState
	if st.PosM, err = r.float64(); err != nil {
		return VehicleState{}, err
	}
	if st.SpeedMS, err = r.float64(); err != nil {
		return VehicleState{}, err
	}
	if st.Done, err = r.bool1(); err != nil {
		return VehicleState{}, err
	}
	return st, nil
}

// SignalGreen reports the phase of a named signal.
func (c *Client) SignalGreen(name string) (bool, error) {
	var b buffer
	b.byte1(CmdGetSignal)
	if err := b.string2(name); err != nil {
		return false, err
	}
	r, err := c.roundTrip(b.b)
	if err != nil {
		return false, err
	}
	return r.bool1()
}

// QueueAt returns the standing-queue length at a named signal.
func (c *Client) QueueAt(name string) (int, error) {
	var b buffer
	b.byte1(CmdGetQueue)
	if err := b.string2(name); err != nil {
		return 0, err
	}
	r, err := c.roundTrip(b.b)
	if err != nil {
		return 0, err
	}
	n, err := r.uint32()
	return int(n), err
}

// VehicleCount returns the number of vehicles on the corridor.
func (c *Client) VehicleCount() (int, error) {
	var b buffer
	b.byte1(CmdVehicleCount)
	r, err := c.roundTrip(b.b)
	if err != nil {
		return 0, err
	}
	n, err := r.uint32()
	return int(n), err
}

// Trips fetches the completed trips so far.
func (c *Client) Trips() ([]sim.Trip, error) {
	var b buffer
	b.byte1(CmdGetTrips)
	r, err := c.roundTrip(b.b)
	if err != nil {
		return nil, err
	}
	n, err := r.uint32()
	if err != nil {
		return nil, err
	}
	trips := make([]sim.Trip, 0, n)
	for i := uint32(0); i < n; i++ {
		var tr sim.Trip
		if tr.ID, err = r.string2(); err != nil {
			return nil, err
		}
		if tr.EnterSec, err = r.float64(); err != nil {
			return nil, err
		}
		if tr.ExitSec, err = r.float64(); err != nil {
			return nil, err
		}
		if tr.Turned, err = r.bool1(); err != nil {
			return nil, err
		}
		trips = append(trips, tr)
	}
	return trips, nil
}

// Crossings returns how many vehicles have crossed a named signal.
func (c *Client) Crossings(name string) (int, error) {
	var b buffer
	b.byte1(CmdGetCrossings)
	if err := b.string2(name); err != nil {
		return 0, err
	}
	r, err := c.roundTrip(b.b)
	if err != nil {
		return 0, err
	}
	n, err := r.uint32()
	return int(n), err
}

// Backlog returns the number of deferred background spawns.
func (c *Client) Backlog() (int, error) {
	var b buffer
	b.byte1(CmdGetBacklog)
	r, err := c.roundTrip(b.b)
	if err != nil {
		return 0, err
	}
	n, err := r.uint32()
	return int(n), err
}

// GetTrace fetches the recorded trajectory of a controlled vehicle.
func (c *Client) GetTrace(id string) (*profile.Profile, error) {
	var b buffer
	b.byte1(CmdGetTrace)
	if err := b.string2(id); err != nil {
		return nil, err
	}
	r, err := c.roundTrip(b.b)
	if err != nil {
		return nil, err
	}
	n, err := r.uint32()
	if err != nil {
		return nil, err
	}
	pts := make([]profile.Point, 0, n)
	for i := uint32(0); i < n; i++ {
		var p profile.Point
		if p.T, err = r.float64(); err != nil {
			return nil, err
		}
		if p.Pos, err = r.float64(); err != nil {
			return nil, err
		}
		if p.V, err = r.float64(); err != nil {
			return nil, err
		}
		pts = append(pts, p)
	}
	return profile.New(pts)
}
