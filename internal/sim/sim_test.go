package sim

import (
	"math"
	"testing"

	"evvo/internal/queue"
	"evvo/internal/road"
)

func openRoad(t *testing.T, length float64) *road.Route {
	t.Helper()
	r, err := road.NewRoute(road.RouteConfig{LengthM: length, DefaultMaxMS: 15})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func signalRoad(t *testing.T, timing road.SignalTiming) *road.Route {
	t.Helper()
	r, err := road.NewRoute(road.RouteConfig{
		LengthM: 1000, DefaultMaxMS: 15,
		Controls: []road.Control{{Kind: road.ControlSignal, PositionM: 500, Timing: timing, Name: "sig"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func newSim(t *testing.T, cfg Config) *Simulation {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("nil route accepted")
	}
	if _, err := New(Config{Route: openRoad(t, 100), StepSec: -1}); err == nil {
		t.Fatal("negative step accepted")
	}
	if _, err := New(Config{Route: openRoad(t, 100), StraightRatio: 1.5}); err == nil {
		t.Fatal("ratio > 1 accepted")
	}
	bad := DefaultVehicleParams()
	bad.SigmaDawdle = 1.0
	if _, err := New(Config{Route: openRoad(t, 100), Vehicle: bad}); err == nil {
		t.Fatal("sigma = 1 accepted")
	}
}

func TestVehicleParamsValidate(t *testing.T) {
	if err := DefaultVehicleParams().Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*VehicleParams){
		func(p *VehicleParams) { p.LengthM = 0 },
		func(p *VehicleParams) { p.AccelMS2 = 0 },
		func(p *VehicleParams) { p.DecelMS2 = -1 },
		func(p *VehicleParams) { p.MinGapM = -1 },
		func(p *VehicleParams) { p.StopWaitSec = -1 },
	}
	for i, mutate := range cases {
		p := DefaultVehicleParams()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Fatalf("case %d accepted %+v", i, p)
		}
	}
}

func TestControlledVehicleDrivesToEnd(t *testing.T) {
	s := newSim(t, Config{Route: openRoad(t, 500), Seed: 1})
	if err := s.AddControlled("ev"); err != nil {
		t.Fatal(err)
	}
	for s.Time() < 120 {
		if err := s.SetSpeed("ev", 15); err != nil {
			t.Fatal(err)
		}
		s.Step()
		st, err := s.VehicleState("ev")
		if err != nil {
			t.Fatal(err)
		}
		if st.Done {
			break
		}
	}
	st, _ := s.VehicleState("ev")
	if !st.Done {
		t.Fatalf("EV did not finish: %+v", st)
	}
	trips := s.Trips()
	if len(trips) != 1 || trips[0].ID != "ev" || trips[0].Turned {
		t.Fatalf("trips = %+v", trips)
	}
	// ~500 m at 15 m/s with accel from rest: ≳ 33 s, ≲ 60 s.
	dur := trips[0].ExitSec - trips[0].EnterSec
	if dur < 33 || dur > 60 {
		t.Fatalf("trip duration %v s out of plausible range", dur)
	}
}

func TestControlledVehicleRespectsSpeedLimit(t *testing.T) {
	s := newSim(t, Config{Route: openRoad(t, 500), Seed: 1})
	if err := s.AddControlled("ev"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		_ = s.SetSpeed("ev", 99) // command far above the 15 m/s limit
		s.Step()
		st, _ := s.VehicleState("ev")
		if st.SpeedMS > 15+1e-9 {
			t.Fatalf("speed %v exceeds limit", st.SpeedMS)
		}
		if st.Done {
			break
		}
	}
}

func TestSetSpeedValidation(t *testing.T) {
	s := newSim(t, Config{Route: openRoad(t, 500), Seed: 1})
	if err := s.SetSpeed("ghost", 5); err == nil {
		t.Fatal("unknown vehicle accepted")
	}
	if err := s.AddControlled("ev"); err != nil {
		t.Fatal(err)
	}
	if err := s.SetSpeed("ev", -5); err == nil {
		t.Fatal("negative speed accepted")
	}
	if err := s.SetSpeed("ev", math.NaN()); err == nil {
		t.Fatal("NaN speed accepted")
	}
	if err := s.AddControlled("ev"); err == nil {
		t.Fatal("duplicate id accepted")
	}
}

func TestRedLightStopsVehicle(t *testing.T) {
	// Permanent red for the first 200 s.
	s := newSim(t, Config{
		Route: signalRoad(t, road.SignalTiming{RedSec: 200, GreenSec: 10}),
		Seed:  2,
	})
	if err := s.AddControlled("ev"); err != nil {
		t.Fatal(err)
	}
	for s.Time() < 100 {
		_ = s.SetSpeed("ev", 15)
		s.Step()
	}
	st, _ := s.VehicleState("ev")
	if st.Done || st.PosM > 500 {
		t.Fatalf("EV crossed a red light: %+v", st)
	}
	if st.PosM < 480 {
		t.Fatalf("EV stopped too far from the line: %+v", st)
	}
	if st.SpeedMS > 0.5 {
		t.Fatalf("EV not stopped at red: %+v", st)
	}
}

func TestGreenLightPassThrough(t *testing.T) {
	s := newSim(t, Config{
		Route: signalRoad(t, road.SignalTiming{RedSec: 0, GreenSec: 100}),
		Seed:  2,
	})
	if err := s.AddControlled("ev"); err != nil {
		t.Fatal(err)
	}
	minSpeedNearLine := math.Inf(1)
	for s.Time() < 120 {
		_ = s.SetSpeed("ev", 15)
		s.Step()
		st, _ := s.VehicleState("ev")
		if st.PosM > 480 && st.PosM < 520 && !st.Done {
			minSpeedNearLine = math.Min(minSpeedNearLine, st.SpeedMS)
		}
		if st.Done {
			break
		}
	}
	if minSpeedNearLine < 14 {
		t.Fatalf("EV slowed to %v at an always-green signal", minSpeedNearLine)
	}
}

func TestStopSignDwell(t *testing.T) {
	r, err := road.NewRoute(road.RouteConfig{
		LengthM: 600, DefaultMaxMS: 15,
		Controls: []road.Control{{Kind: road.ControlStopSign, PositionM: 300, Name: "stop"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := newSim(t, Config{Route: r, Seed: 3})
	if err := s.AddControlled("ev"); err != nil {
		t.Fatal(err)
	}
	stoppedAtSign := false
	for s.Time() < 120 {
		_ = s.SetSpeed("ev", 15)
		s.Step()
		st, _ := s.VehicleState("ev")
		// The safety layer holds vehicles stopLineBufferM short of the line.
		if st.PosM >= 298 && st.PosM <= 301 && st.SpeedMS < 0.1 {
			stoppedAtSign = true
		}
		if st.Done {
			break
		}
	}
	if !stoppedAtSign {
		t.Fatal("EV never stopped at the stop sign")
	}
	st, _ := s.VehicleState("ev")
	if !st.Done {
		t.Fatalf("EV never finished after the stop: %+v", st)
	}
}

func TestBackgroundTrafficFlows(t *testing.T) {
	s := newSim(t, Config{
		Route:    openRoad(t, 800),
		Seed:     4,
		Arrivals: queue.ConstantRate(queue.VehPerHour(600)),
	})
	s.RunUntil(600)
	finished := 0
	for _, tr := range s.Trips() {
		if !tr.Turned {
			finished++
		}
	}
	// 600 veh/h over 10 min ≈ 100 expected; allow wide stochastic band.
	if finished < 60 || finished > 140 {
		t.Fatalf("finished %d trips, want ≈100", finished)
	}
}

func TestNoCollisions(t *testing.T) {
	s := newSim(t, Config{
		Route: signalRoad(t, road.SignalTiming{RedSec: 30, GreenSec: 30}),
		Seed:  5,
		// Heavy traffic to force queueing at the light.
		Arrivals: queue.ConstantRate(queue.VehPerHour(900)),
	})
	p := DefaultVehicleParams()
	for s.Time() < 400 {
		s.Step()
		var prevPos float64
		first := true
		for _, v := range s.vehicles {
			if v.done {
				continue
			}
			if !first && prevPos-v.pos < p.LengthM-1e-6 {
				t.Fatalf("collision at t=%.1f: gap %.2f between fronts", s.Time(), prevPos-v.pos)
			}
			prevPos = v.pos
			first = false
		}
	}
}

func TestQueueBuildsAndDrains(t *testing.T) {
	s := newSim(t, Config{
		Route:    signalRoad(t, road.SignalTiming{RedSec: 30, GreenSec: 30}),
		Seed:     6,
		Arrivals: queue.ConstantRate(queue.VehPerHour(400)),
	})
	maxQ := 0
	var qEndOfGreen []int
	for s.Time() < 600 {
		s.Step()
		q, err := s.QueueAt("sig")
		if err != nil {
			t.Fatal(err)
		}
		if q > maxQ {
			maxQ = q
		}
		// Sample queue at the very end of each green phase.
		green, into := (road.SignalTiming{RedSec: 30, GreenSec: 30}).PhaseAt(s.Time())
		if green && into > 59.4 {
			qEndOfGreen = append(qEndOfGreen, q)
		}
	}
	if maxQ < 2 {
		t.Fatalf("queue never built (max %d)", maxQ)
	}
	drained := 0
	for _, q := range qEndOfGreen {
		if q == 0 {
			drained++
		}
	}
	if drained < len(qEndOfGreen)/2 {
		t.Fatalf("queue rarely drained by end of green: %v", qEndOfGreen)
	}
}

func TestQueueAtUnknownSignal(t *testing.T) {
	s := newSim(t, Config{Route: openRoad(t, 100), Seed: 1})
	if _, err := s.QueueAt("nope"); err == nil {
		t.Fatal("unknown signal accepted")
	}
	if _, err := s.SignalGreen("nope"); err == nil {
		t.Fatal("unknown signal accepted")
	}
}

func TestTurnRatioRemovesVehicles(t *testing.T) {
	s := newSim(t, Config{
		Route:         signalRoad(t, road.SignalTiming{RedSec: 0, GreenSec: 1000}),
		Seed:          7,
		Arrivals:      queue.ConstantRate(queue.VehPerHour(700)),
		StraightRatio: 0.5,
	})
	s.RunUntil(800)
	turned, through := 0, 0
	for _, tr := range s.Trips() {
		if tr.Turned {
			turned++
		} else {
			through++
		}
	}
	if turned == 0 || through == 0 {
		t.Fatalf("turned=%d through=%d, want both positive", turned, through)
	}
	frac := float64(turned) / float64(turned+through)
	if frac < 0.35 || frac > 0.65 {
		t.Fatalf("turn fraction %v, want ≈0.5", frac)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() ([]Trip, float64) {
		s := newSim(t, Config{
			Route:    signalRoad(t, road.SignalTiming{RedSec: 30, GreenSec: 30}),
			Seed:     42,
			Arrivals: queue.ConstantRate(queue.VehPerHour(500)),
		})
		_ = s.AddControlled("ev")
		for s.Time() < 200 {
			_ = s.SetSpeed("ev", 12)
			s.Step()
		}
		st, _ := s.VehicleState("ev")
		return s.Trips(), st.PosM
	}
	t1, p1 := run()
	t2, p2 := run()
	if p1 != p2 || len(t1) != len(t2) {
		t.Fatalf("nondeterministic: pos %v vs %v, trips %d vs %d", p1, p2, len(t1), len(t2))
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("trip %d differs: %+v vs %+v", i, t1[i], t2[i])
		}
	}
}

func TestTraceRecordsTrajectory(t *testing.T) {
	s := newSim(t, Config{Route: openRoad(t, 300), Seed: 1})
	if err := s.AddControlled("ev"); err != nil {
		t.Fatal(err)
	}
	for s.Time() < 60 {
		_ = s.SetSpeed("ev", 10)
		s.Step()
		if st, _ := s.VehicleState("ev"); st.Done {
			break
		}
	}
	prof, err := s.Trace("ev")
	if err != nil {
		t.Fatal(err)
	}
	if prof.Distance() < 295 {
		t.Fatalf("trace distance %v, want ≈300", prof.Distance())
	}
	if _, err := s.Trace("ghost"); err == nil {
		t.Fatal("unknown trace accepted")
	}
}

func TestEntryBlockedRejectsControlled(t *testing.T) {
	s := newSim(t, Config{Route: openRoad(t, 300), Seed: 1})
	if err := s.AddControlled("a"); err != nil {
		t.Fatal(err)
	}
	// "a" has not moved: entry area is occupied.
	if err := s.AddControlled("b"); err == nil {
		t.Fatal("blocked entry accepted")
	}
}

func TestBacklogGrowsWhenEntryJammed(t *testing.T) {
	// A permanently red light near the entry jams the corridor start.
	r, err := road.NewRoute(road.RouteConfig{
		LengthM: 200, DefaultMaxMS: 15,
		Controls: []road.Control{{
			Kind: road.ControlSignal, PositionM: 30,
			Timing: road.SignalTiming{RedSec: 1000, GreenSec: 1}, Name: "jam",
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := newSim(t, Config{Route: r, Seed: 8, Arrivals: queue.ConstantRate(queue.VehPerHour(1200))})
	s.RunUntil(300)
	if s.Backlog() == 0 {
		t.Fatal("backlog should accumulate behind a jammed entry")
	}
	if s.VehicleCount() == 0 {
		t.Fatal("some vehicles should be stuck on the corridor")
	}
}

func TestSpeedFactorHeterogeneity(t *testing.T) {
	if _, err := New(Config{Route: openRoad(t, 100), SpeedFactorStd: 0.9}); err == nil {
		t.Fatal("excessive std accepted")
	}
	s := newSim(t, Config{
		Route:          openRoad(t, 2000),
		Seed:           9,
		Arrivals:       queue.ConstantRate(queue.VehPerHour(500)),
		SpeedFactorStd: 0.12,
	})
	s.RunUntil(400)
	// Completed trips should show meaningful travel-time spread.
	var durs []float64
	for _, tr := range s.Trips() {
		if !tr.Turned {
			durs = append(durs, tr.ExitSec-tr.EnterSec)
		}
	}
	if len(durs) < 10 {
		t.Fatalf("only %d finished trips", len(durs))
	}
	mn, mx := durs[0], durs[0]
	for _, d := range durs {
		mn = math.Min(mn, d)
		mx = math.Max(mx, d)
	}
	if mx-mn < 10 {
		t.Fatalf("travel-time spread %.1f s too small for heterogeneous drivers", mx-mn)
	}
	// A homogeneous run has a (near) uniform free-flow time.
	h := newSim(t, Config{
		Route:    openRoad(t, 2000),
		Seed:     9,
		Arrivals: queue.ConstantRate(queue.VehPerHour(500)),
	})
	h.RunUntil(400)
	var hd []float64
	for _, tr := range h.Trips() {
		if !tr.Turned {
			hd = append(hd, tr.ExitSec-tr.EnterSec)
		}
	}
	hmn, hmx := hd[0], hd[0]
	for _, d := range hd {
		hmn = math.Min(hmn, d)
		hmx = math.Max(hmx, d)
	}
	if hmx-hmn >= mx-mn {
		t.Fatalf("homogeneous spread %.1f not below heterogeneous %.1f", hmx-hmn, mx-mn)
	}
}

func TestCrossingsCountAndSaturationFlow(t *testing.T) {
	s := newSim(t, Config{
		Route:    signalRoad(t, road.SignalTiming{RedSec: 30, GreenSec: 30}),
		Seed:     10,
		Arrivals: queue.ConstantRate(queue.VehPerHour(700)),
	})
	if _, err := s.Crossings("nope"); err == nil {
		t.Fatal("unknown signal accepted")
	}
	s.RunUntil(600)
	n, err := s.Crossings("sig")
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no crossings counted")
	}
	// Throughput cannot exceed capacity: with 50% green and ≈2 s saturation
	// headway the ceiling is ≈900 veh/h; at 700 veh/h demand we expect
	// within (arrival rate ± stochastic band) but never above the ceiling.
	perHour := float64(n) / 600 * 3600
	if perHour > 950 {
		t.Fatalf("throughput %.0f veh/h beyond physical capacity", perHour)
	}
	if perHour < 350 {
		t.Fatalf("throughput %.0f veh/h implausibly low for 700 veh/h demand", perHour)
	}
}
