// Package sim is a microscopic traffic simulator substituting for SUMO in
// the paper's evaluation (DESIGN.md §4): a single-lane corridor described
// by a road.Route, Krauss car-following (the model family SUMO itself
// uses), fixed-cycle traffic signals enforced as stop-line obstacles,
// stop signs with mandatory dwell, Bernoulli-thinned Poisson background
// arrivals with a straight/turn split γ at signalized intersections, and
// externally speed-controlled vehicles whose commands are overridden by
// the safety layer exactly like TraCI's setSpeed.
//
// All randomness comes from one seeded source; a Simulation is fully
// deterministic given its Config.
//
// A Simulation is not safe for concurrent use; the trasi server serializes
// access.
package sim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"evvo/internal/profile"
	"evvo/internal/queue"
	"evvo/internal/road"
)

// VehicleParams describes car-following behaviour.
type VehicleParams struct {
	// LengthM is the vehicle length (default 4.5).
	LengthM float64
	// AccelMS2 and DecelMS2 are the maximum acceleration and comfortable
	// deceleration magnitudes (defaults 2.5 and 3.0; the Krauss b).
	AccelMS2, DecelMS2 float64
	// SigmaDawdle is the Krauss driver-imperfection σ in [0, 1)
	// (default 0.3); controlled vehicles never dawdle.
	SigmaDawdle float64
	// MinGapM is the standstill gap kept behind a leader (default 2.0).
	MinGapM float64
	// StopWaitSec is the mandatory dwell at stop signs (default 1.5).
	StopWaitSec float64
}

// DefaultVehicleParams returns SUMO-like passenger-car defaults.
func DefaultVehicleParams() VehicleParams {
	return VehicleParams{
		LengthM:     4.5,
		AccelMS2:    2.5,
		DecelMS2:    3.0,
		SigmaDawdle: 0.3,
		MinGapM:     2.0,
		StopWaitSec: 1.5,
	}
}

// Validate reports whether the parameters are usable.
func (p VehicleParams) Validate() error {
	switch {
	case p.LengthM <= 0:
		return fmt.Errorf("sim: vehicle length %.2f must be positive", p.LengthM)
	case p.AccelMS2 <= 0 || p.DecelMS2 <= 0:
		return fmt.Errorf("sim: accel/decel %.2f/%.2f must be positive", p.AccelMS2, p.DecelMS2)
	case p.SigmaDawdle < 0 || p.SigmaDawdle >= 1:
		return fmt.Errorf("sim: sigma %.2f must be in [0, 1)", p.SigmaDawdle)
	case p.MinGapM < 0:
		return fmt.Errorf("sim: min gap %.2f must be non-negative", p.MinGapM)
	case p.StopWaitSec < 0:
		return fmt.Errorf("sim: stop wait %.2f must be non-negative", p.StopWaitSec)
	}
	return nil
}

// Config parameterizes a Simulation.
type Config struct {
	// Route is the corridor geometry (required).
	Route *road.Route
	// StepSec is the simulation tick (default 0.5).
	StepSec float64
	// Seed drives arrivals, turn decisions and dawdling.
	Seed int64
	// Arrivals is the background-traffic entry rate in veh/s at position 0
	// as a function of absolute time; nil means no background traffic.
	Arrivals queue.RateFunc
	// StraightRatio is γ: the probability a background vehicle continues
	// straight at each signalized intersection (default 1; turners leave
	// the corridor at the intersection).
	StraightRatio float64
	// Vehicle sets car-following behaviour (defaults applied per field
	// only when the whole struct is zero).
	Vehicle VehicleParams
	// StartTime is the absolute simulation start time (default 0), so
	// signal phases align with optimizer departure times.
	StartTime float64
	// SpeedFactorStd adds driver heterogeneity: each background vehicle's
	// cruise speed is the local limit scaled by a factor drawn from
	// N(1, SpeedFactorStd), clamped to [0.7, 1.3]. Zero (default) makes
	// all background drivers identical. Controlled vehicles are never
	// scaled.
	SpeedFactorStd float64
}

// State is a vehicle observation.
type State struct {
	ID string
	// PosM is the front-bumper position along the corridor.
	PosM float64
	// SpeedMS is the current speed.
	SpeedMS float64
	// Done reports the vehicle has left the corridor (finished or turned).
	Done bool
}

// Trip records a completed traversal.
type Trip struct {
	ID                string
	EnterSec, ExitSec float64
	// Turned is true when the vehicle left at an intersection rather than
	// reaching the corridor end.
	Turned bool
}

type vehicle struct {
	id         string
	pos, speed float64
	// speedFactor scales the legal limit for this driver (1 for
	// controlled vehicles).
	speedFactor float64
	controlled  bool
	command     float64 // target speed for controlled vehicles
	nextStop    int     // index into stop signs not yet satisfied
	stopTimer   float64 // time spent standing at the current stop sign
	nextSignal  int     // index into signals not yet crossed
	enterTime   float64
	done        bool
	// trace holds the trajectory of controlled vehicles.
	trace []profile.Point
}

// Simulation is a running corridor simulation.
type Simulation struct {
	cfg     Config
	rng     *rand.Rand
	now     float64
	signals []road.Control
	stops   []road.Control
	// vehicles ordered front (largest pos) to back.
	vehicles []*vehicle
	byID     map[string]*vehicle
	trips    []Trip
	// crossings counts stop-line crossings per signal index.
	crossings []int
	backlog   int // spawns deferred for lack of space
	seq       int
}

// New validates the configuration and builds a Simulation.
func New(cfg Config) (*Simulation, error) {
	if cfg.Route == nil {
		return nil, fmt.Errorf("sim: config needs a route")
	}
	if cfg.StepSec == 0 {
		cfg.StepSec = 0.5
	}
	if cfg.StepSec <= 0 {
		return nil, fmt.Errorf("sim: step %.3f s must be positive", cfg.StepSec)
	}
	if cfg.StraightRatio == 0 {
		cfg.StraightRatio = 1
	}
	if cfg.StraightRatio < 0 || cfg.StraightRatio > 1 {
		return nil, fmt.Errorf("sim: straight ratio %.3f must be in (0, 1]", cfg.StraightRatio)
	}
	if (cfg.Vehicle == VehicleParams{}) {
		cfg.Vehicle = DefaultVehicleParams()
	}
	if err := cfg.Vehicle.Validate(); err != nil {
		return nil, err
	}
	if cfg.SpeedFactorStd < 0 || cfg.SpeedFactorStd > 0.5 {
		return nil, fmt.Errorf("sim: speed factor std %.2f must be in [0, 0.5]", cfg.SpeedFactorStd)
	}
	sim := &Simulation{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		now:     cfg.StartTime,
		signals: cfg.Route.Signals(),
		stops:   cfg.Route.StopSigns(),
		byID:    make(map[string]*vehicle),
	}
	sim.crossings = make([]int, len(sim.signals))
	return sim, nil
}

// Time returns the current absolute simulation time.
func (s *Simulation) Time() float64 { return s.now }

// StepSec returns the simulation tick length.
func (s *Simulation) StepSec() float64 { return s.cfg.StepSec }

// VehicleCount returns the number of vehicles currently on the corridor.
func (s *Simulation) VehicleCount() int { return len(s.vehicles) }

// Trips returns completed trips so far (copy).
func (s *Simulation) Trips() []Trip {
	out := make([]Trip, len(s.trips))
	copy(out, s.trips)
	return out
}

// AddControlled inserts an externally controlled vehicle at the corridor
// start, initially at rest with a zero speed command. The id must be unique
// and the entry area clear.
func (s *Simulation) AddControlled(id string) error {
	if _, ok := s.byID[id]; ok {
		return fmt.Errorf("sim: vehicle %q already exists", id)
	}
	if !s.entryClear() {
		return fmt.Errorf("sim: entry area occupied at t=%.1f", s.now)
	}
	v := &vehicle{id: id, controlled: true, speedFactor: 1, enterTime: s.now}
	v.trace = append(v.trace, profile.Point{T: s.now, Pos: 0, V: 0})
	s.insert(v)
	return nil
}

// SetSpeed commands a controlled vehicle's target speed (m/s). The safety
// layer (leaders, red lights, stop signs, speed limits) may reduce the
// realised speed, mirroring TraCI setSpeed semantics.
func (s *Simulation) SetSpeed(id string, speed float64) error {
	v, ok := s.byID[id]
	if !ok {
		return fmt.Errorf("sim: unknown vehicle %q", id)
	}
	if !v.controlled {
		return fmt.Errorf("sim: vehicle %q is not externally controlled", id)
	}
	if speed < 0 || math.IsNaN(speed) {
		return fmt.Errorf("sim: invalid speed command %v", speed)
	}
	v.command = speed
	return nil
}

// VehicleState returns the observation for id. Finished vehicles remain
// queryable with Done = true.
func (s *Simulation) VehicleState(id string) (State, error) {
	v, ok := s.byID[id]
	if !ok {
		return State{}, fmt.Errorf("sim: unknown vehicle %q", id)
	}
	return State{ID: v.id, PosM: v.pos, SpeedMS: v.speed, Done: v.done}, nil
}

// Trace returns the recorded trajectory of a controlled vehicle.
func (s *Simulation) Trace(id string) (*profile.Profile, error) {
	v, ok := s.byID[id]
	if !ok {
		return nil, fmt.Errorf("sim: unknown vehicle %q", id)
	}
	if !v.controlled {
		return nil, fmt.Errorf("sim: vehicle %q has no trace (not controlled)", id)
	}
	return profile.New(v.trace)
}

// SignalGreen reports the phase of a named signal at the current time.
func (s *Simulation) SignalGreen(name string) (bool, error) {
	for _, c := range s.signals {
		if c.Name == name {
			green, _ := c.Timing.PhaseAt(s.now)
			return green, nil
		}
	}
	return false, fmt.Errorf("sim: unknown signal %q", name)
}

// QueueAt returns the standing-queue length (vehicles) at a named signal:
// the contiguous chain of near-stopped vehicles ending at the stop line.
func (s *Simulation) QueueAt(name string) (int, error) {
	var line float64
	found := false
	for _, c := range s.signals {
		if c.Name == name {
			line, found = c.PositionM, true
			break
		}
	}
	if !found {
		return 0, fmt.Errorf("sim: unknown signal %q", name)
	}
	const (
		stoppedBelow = 2.0 // m/s: crawling in a discharge wave still queues
		chainGap     = 12.0
	)
	count := 0
	expect := line
	for _, v := range s.vehicles { // front to back
		if v.pos > line || v.done {
			continue
		}
		if expect-v.pos > chainGap+s.cfg.Vehicle.LengthM {
			break // chain broken: the rest is free-flowing traffic
		}
		if v.speed <= stoppedBelow {
			count++
			expect = v.pos
		} else {
			break
		}
	}
	return count, nil
}

// Backlog returns spawns deferred because the entry was blocked — upstream
// demand that has not fit on the corridor yet.
func (s *Simulation) Backlog() int { return s.backlog }

// Crossings returns how many vehicles have crossed a named signal's stop
// line since the start — with QueueAt, enough to measure saturation flow.
func (s *Simulation) Crossings(name string) (int, error) {
	for i, c := range s.signals {
		if c.Name == name {
			return s.crossings[i], nil
		}
	}
	return 0, fmt.Errorf("sim: unknown signal %q", name)
}

// entryClear reports whether a new vehicle fits at position 0.
func (s *Simulation) entryClear() bool {
	need := s.cfg.Vehicle.LengthM + s.cfg.Vehicle.MinGapM + 1
	for _, v := range s.vehicles {
		if !v.done && v.pos < need {
			return false
		}
	}
	return true
}

// insert adds a vehicle keeping front-to-back order (new vehicles enter at
// the back).
func (s *Simulation) insert(v *vehicle) {
	s.vehicles = append(s.vehicles, v)
	s.byID[v.id] = v
	// Entry is always at pos 0 (the back); re-sort defensively anyway.
	sort.SliceStable(s.vehicles, func(i, j int) bool { return s.vehicles[i].pos > s.vehicles[j].pos })
}

// RunUntil advances the simulation until Time() >= t.
func (s *Simulation) RunUntil(t float64) {
	for s.now < t {
		s.Step()
	}
}

// Step advances the simulation by one tick.
func (s *Simulation) Step() {
	dt := s.cfg.StepSec
	s.spawn()

	// Plan new speeds front-to-back against current state.
	newSpeeds := make([]float64, len(s.vehicles))
	for i, v := range s.vehicles {
		if v.done {
			continue
		}
		newSpeeds[i] = s.planSpeed(i, v)
	}
	// Apply movement.
	for i, v := range s.vehicles {
		if v.done {
			continue
		}
		s.move(v, newSpeeds[i])
	}
	s.compact()
	s.now += dt
}

// planSpeed computes the next-tick speed for vehicle index i.
func (s *Simulation) planSpeed(i int, v *vehicle) float64 {
	p := s.cfg.Vehicle
	dt := s.cfg.StepSec
	_, limit := s.cfg.Route.SpeedLimits(math.Min(v.pos, s.cfg.Route.LengthM()-1e-9))
	limit *= v.speedFactor

	vMax := math.Min(limit, v.speed+p.AccelMS2*dt)
	// Leader constraint.
	if lead := s.leader(i); lead != nil {
		gap := lead.pos - p.LengthM - p.MinGapM - v.pos
		vMax = math.Min(vMax, s.krauss(gap, lead.speed))
	}
	// Red-signal constraint: the next uncrossed signal is a standing
	// obstacle while red. Vehicles hold stopLineBufferM short of the line
	// so asymptotic creep can never register as a crossing.
	if v.nextSignal < len(s.signals) {
		sig := s.signals[v.nextSignal]
		if green, _ := sig.Timing.PhaseAt(s.now); !green {
			gap := sig.PositionM - stopLineBufferM - v.pos
			vMax = math.Min(vMax, s.krauss(gap, 0))
		}
	}
	// Stop-sign constraint: an obstacle until the mandatory dwell is done.
	if v.nextStop < len(s.stops) {
		stop := s.stops[v.nextStop]
		gap := stop.PositionM - stopLineBufferM - v.pos
		if gap <= 1.0 && v.speed < 0.1 {
			v.stopTimer += dt
			if v.stopTimer >= p.StopWaitSec {
				v.nextStop++ // dwell satisfied; proceed
			} else {
				return 0
			}
		} else if v.nextStop < len(s.stops) {
			vMax = math.Min(vMax, s.krauss(gap, 0))
		}
	}
	if v.controlled {
		vMax = math.Min(vMax, v.command)
	} else if p.SigmaDawdle > 0 {
		vMax -= p.SigmaDawdle * p.AccelMS2 * dt * s.rng.Float64()
	}
	if vMax < 0 {
		vMax = 0
	}
	return vMax
}

// stopLineBufferM is how far short of a stop line vehicles hold.
const stopLineBufferM = 1.0

// krauss returns the Krauss safe speed for a gap to a leader moving at
// leaderSpeed: v_safe = −bτ + sqrt(b²τ² + v_l² + 2b·gap).
func (s *Simulation) krauss(gap, leaderSpeed float64) float64 {
	if gap <= 0 {
		return 0
	}
	b := s.cfg.Vehicle.DecelMS2
	tau := s.cfg.StepSec
	return -b*tau + math.Sqrt(b*b*tau*tau+leaderSpeed*leaderSpeed+2*b*gap)
}

// leader returns the nearest active vehicle ahead of index i, or nil.
func (s *Simulation) leader(i int) *vehicle {
	for j := i - 1; j >= 0; j-- {
		if !s.vehicles[j].done {
			return s.vehicles[j]
		}
	}
	return nil
}

// move advances a vehicle at its planned speed, handling stop-sign
// overshoot, signal crossings (turn decisions) and corridor exit.
func (s *Simulation) move(v *vehicle, speed float64) {
	dt := s.cfg.StepSec
	newPos := v.pos + speed*dt

	// Never roll past an unsatisfied stop sign.
	if v.nextStop < len(s.stops) {
		line := s.stops[v.nextStop].PositionM
		if newPos > line {
			newPos = line
			speed = 0
		}
	}
	// Signal crossings: turners leave the corridor.
	for v.nextSignal < len(s.signals) {
		line := s.signals[v.nextSignal].PositionM
		if newPos < line {
			break
		}
		s.crossings[v.nextSignal]++
		v.nextSignal++
		if !v.controlled && s.rng.Float64() > s.cfg.StraightRatio {
			v.pos = line
			v.speed = speed
			s.finish(v, true)
			return
		}
	}
	v.pos = newPos
	v.speed = speed
	if v.controlled {
		v.trace = append(v.trace, profile.Point{T: s.now + dt, Pos: v.pos, V: v.speed})
	}
	if v.pos >= s.cfg.Route.LengthM() {
		s.finish(v, false)
	}
}

// finish retires a vehicle and records its trip.
func (s *Simulation) finish(v *vehicle, turned bool) {
	v.done = true
	s.trips = append(s.trips, Trip{ID: v.id, EnterSec: v.enterTime, ExitSec: s.now + s.cfg.StepSec, Turned: turned})
}

// compact removes finished vehicles from the ordering (they stay in byID
// for state queries).
func (s *Simulation) compact() {
	active := s.vehicles[:0]
	for _, v := range s.vehicles {
		if !v.done {
			active = append(active, v)
		}
	}
	s.vehicles = active
}

// spawn admits background traffic: Bernoulli approximation of Poisson
// arrivals at the configured rate, deferred while the entry is blocked.
func (s *Simulation) spawn() {
	if s.cfg.Arrivals == nil {
		return
	}
	rate := math.Max(0, s.cfg.Arrivals(s.now))
	if s.rng.Float64() < rate*s.cfg.StepSec {
		s.backlog++
	}
	for s.backlog > 0 && s.entryClear() {
		s.backlog--
		s.seq++
		factor := 1.0
		if s.cfg.SpeedFactorStd > 0 {
			factor = 1 + s.rng.NormFloat64()*s.cfg.SpeedFactorStd
			factor = math.Max(0.7, math.Min(1.3, factor))
		}
		v := &vehicle{
			id:          fmt.Sprintf("veh-%d", s.seq),
			speedFactor: factor,
			enterTime:   s.now,
			// Enter rolling at a modest speed, as if arriving from
			// upstream.
			speed: math.Min(8, s.krauss(s.headroom(), 0)),
		}
		s.insert(v)
	}
}

// headroom returns the free distance ahead of the entry point.
func (s *Simulation) headroom() float64 {
	h := s.cfg.Route.LengthM()
	for _, v := range s.vehicles {
		if !v.done {
			h = v.pos - s.cfg.Vehicle.LengthM - s.cfg.Vehicle.MinGapM
		}
	}
	if h < 0 {
		h = 0
	}
	return h
}
