// Package profile represents vehicle velocity profiles — trajectories of
// (time, position, speed) — and evaluates them for energy and trip time
// with the internal/ev model. It also provides deterministic "mild" and
// "fast" reference drivers reproducing the two human driving styles the
// paper collected on US-25 (Section III-A-3): mild follows the lower speed
// band and accelerates gradually; fast tracks the speed limit with brisk
// accelerations. Both stop at stop signs and at red lights (plus a queue
// discharge delay), as the collected traces in the paper's Fig. 7(a) do.
package profile

import (
	"fmt"
	"math"
	"sort"

	"evvo/internal/ev"
	"evvo/internal/road"
	"evvo/internal/units"
)

// Point is one sample of a trajectory.
type Point struct {
	// T is time since departure (s).
	T float64
	// Pos is the longitudinal position (m).
	Pos float64
	// V is the speed (m/s).
	V float64
}

// Profile is an immutable sampled trajectory with non-decreasing time and
// position. Construct with New or a driver/optimizer.
type Profile struct {
	pts []Point
}

// New validates points (non-decreasing T and Pos, non-negative V) and
// returns a Profile. The slice is copied.
func New(pts []Point) (*Profile, error) {
	if len(pts) < 2 {
		return nil, fmt.Errorf("profile: need at least 2 points, got %d", len(pts))
	}
	cp := make([]Point, len(pts))
	copy(cp, pts)
	for i, p := range cp {
		if p.V < 0 {
			return nil, fmt.Errorf("profile: point %d has negative speed %.3f", i, p.V)
		}
		if i == 0 {
			continue
		}
		if p.T < cp[i-1].T {
			return nil, fmt.Errorf("profile: time goes backwards at point %d (%.3f < %.3f)", i, p.T, cp[i-1].T)
		}
		if p.Pos < cp[i-1].Pos {
			return nil, fmt.Errorf("profile: position goes backwards at point %d (%.3f < %.3f)", i, p.Pos, cp[i-1].Pos)
		}
	}
	return &Profile{pts: cp}, nil
}

// Points returns a copy of the samples.
func (p *Profile) Points() []Point {
	out := make([]Point, len(p.pts))
	copy(out, p.pts)
	return out
}

// Len returns the number of samples.
func (p *Profile) Len() int { return len(p.pts) }

// Duration returns total trip time in seconds.
func (p *Profile) Duration() float64 { return p.pts[len(p.pts)-1].T - p.pts[0].T }

// Distance returns total distance covered in metres.
func (p *Profile) Distance() float64 { return p.pts[len(p.pts)-1].Pos - p.pts[0].Pos }

// MaxSpeed returns the maximum sampled speed (m/s).
func (p *Profile) MaxSpeed() float64 {
	max := 0.0
	for _, pt := range p.pts {
		if pt.V > max {
			max = pt.V
		}
	}
	return max
}

// AverageSpeed returns distance divided by duration, 0 for zero duration.
func (p *Profile) AverageSpeed() float64 {
	d := p.Duration()
	if d <= 0 {
		return 0
	}
	return p.Distance() / d
}

// SpeedAtPos returns the linearly interpolated speed at position pos,
// clamped to the profile's position range. Where the vehicle dwells (several
// samples at one position), the speed of the last such sample is used.
func (p *Profile) SpeedAtPos(pos float64) float64 {
	pts := p.pts
	if pos <= pts[0].Pos {
		return pts[0].V
	}
	if pos >= pts[len(pts)-1].Pos {
		return pts[len(pts)-1].V
	}
	i := sort.Search(len(pts), func(i int) bool { return pts[i].Pos > pos })
	// pts[i-1].Pos <= pos < pts[i].Pos
	a, b := pts[i-1], pts[i]
	if b.Pos == a.Pos {
		return b.V
	}
	f := (pos - a.Pos) / (b.Pos - a.Pos)
	return a.V + f*(b.V-a.V)
}

// TimeAtPos returns the first time the profile reaches position pos,
// linearly interpolated, clamped to the trajectory range.
func (p *Profile) TimeAtPos(pos float64) float64 {
	pts := p.pts
	if pos <= pts[0].Pos {
		return pts[0].T
	}
	if pos >= pts[len(pts)-1].Pos {
		return pts[len(pts)-1].T
	}
	i := sort.Search(len(pts), func(i int) bool { return pts[i].Pos >= pos })
	a, b := pts[i-1], pts[i]
	if b.Pos == a.Pos {
		return a.T
	}
	f := (pos - a.Pos) / (b.Pos - a.Pos)
	return a.T + f*(b.T-a.T)
}

// SpeedAtTime returns the linearly interpolated speed at time t, clamped to
// the trajectory time range.
func (p *Profile) SpeedAtTime(t float64) float64 {
	pts := p.pts
	if t <= pts[0].T {
		return pts[0].V
	}
	if t >= pts[len(pts)-1].T {
		return pts[len(pts)-1].V
	}
	i := sort.Search(len(pts), func(i int) bool { return pts[i].T > t })
	a, b := pts[i-1], pts[i]
	if b.T == a.T {
		return b.V
	}
	f := (t - a.T) / (b.T - a.T)
	return a.V + f*(b.V-a.V)
}

// Stops returns the number of distinct stops: maximal intervals where speed
// stays below stopSpeed (m/s) for at least minDur seconds. The initial
// standing start and final stop are not counted.
func (p *Profile) Stops(stopSpeed, minDur float64) int {
	n := 0
	var start float64
	in := false
	for _, pt := range p.pts {
		stopped := pt.V <= stopSpeed
		switch {
		case stopped && !in:
			in, start = true, pt.T
		case !stopped && in:
			in = false
			if pt.T-start >= minDur && start > p.pts[0].T+1e-9 {
				n++
			}
		}
	}
	return n
}

// Energy integrates the ev model over the profile and returns the net pack
// charge in ampere-hours (negative segments are regen). gradeAt supplies the
// road gradient (radians) at a position; pass nil for flat ground. Dwell
// intervals (no motion) consume nothing: the paper's model has no idle load.
func (p *Profile) Energy(params ev.Params, gradeAt func(pos float64) float64) (float64, error) {
	if err := params.Validate(); err != nil {
		return 0, err
	}
	var ah float64
	for i := 1; i < len(p.pts); i++ {
		a, b := p.pts[i-1], p.pts[i]
		dt := b.T - a.T
		ds := b.Pos - a.Pos
		if dt <= 0 || ds <= 0 {
			continue // dwell or duplicate sample
		}
		theta := 0.0
		if gradeAt != nil {
			theta = gradeAt((a.Pos + b.Pos) / 2)
		}
		vAvg := (a.V + b.V) / 2
		acc := (b.V - a.V) / dt
		ah += params.Charge(vAvg, acc, theta, dt)
	}
	return ah, nil
}

// EnergyMAh is Energy reported in milliampere-hours, the unit of the
// paper's Fig. 7(b).
func (p *Profile) EnergyMAh(params ev.Params, gradeAt func(pos float64) float64) (float64, error) {
	ah, err := p.Energy(params, gradeAt)
	return units.AhToMAh(ah), err
}

// ResampleByDistance returns a new profile sampled every ds metres
// (plus the exact endpoints).
func (p *Profile) ResampleByDistance(ds float64) (*Profile, error) {
	if ds <= 0 {
		return nil, fmt.Errorf("profile: resample step %.3f must be positive", ds)
	}
	start, end := p.pts[0].Pos, p.pts[len(p.pts)-1].Pos
	var pts []Point
	for pos := start; pos < end; pos += ds {
		pts = append(pts, Point{T: p.TimeAtPos(pos), Pos: pos, V: p.SpeedAtPos(pos)})
	}
	pts = append(pts, Point{T: p.TimeAtPos(end), Pos: end, V: p.SpeedAtPos(end)})
	return New(pts)
}

// ViolatesLimits reports the first position where the profile exceeds the
// route's maximum speed by more than tol m/s, if any.
func (p *Profile) ViolatesLimits(r *road.Route, tol float64) (pos float64, violated bool) {
	for _, pt := range p.pts {
		_, maxMS := r.SpeedLimits(math.Min(pt.Pos, r.LengthM()-1e-9))
		if pt.V > maxMS+tol {
			return pt.Pos, true
		}
	}
	return 0, false
}

// SOCPoint is one sample of pack state of charge along a trajectory.
type SOCPoint struct {
	// T and Pos locate the sample.
	T, Pos float64
	// SOC is the remaining state of charge in [0, 1].
	SOC float64
}

// SOCTrace integrates the ev model along the profile from a full pack and
// returns the state of charge at every sample — range-anxiety telemetry
// for a planned or executed trip.
func (p *Profile) SOCTrace(params ev.Params, gradeAt func(pos float64) float64) ([]SOCPoint, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	soc := ev.NewStateOfCharge(params)
	out := make([]SOCPoint, 0, len(p.pts))
	out = append(out, SOCPoint{T: p.pts[0].T, Pos: p.pts[0].Pos, SOC: soc.Fraction()})
	for i := 1; i < len(p.pts); i++ {
		a, b := p.pts[i-1], p.pts[i]
		dt := b.T - a.T
		ds := b.Pos - a.Pos
		if dt > 0 && ds > 0 {
			theta := 0.0
			if gradeAt != nil {
				theta = gradeAt((a.Pos + b.Pos) / 2)
			}
			vAvg := (a.V + b.V) / 2
			acc := (b.V - a.V) / dt
			soc.Consume(params.Charge(vAvg, acc, theta, dt))
		}
		out = append(out, SOCPoint{T: b.T, Pos: b.Pos, SOC: soc.Fraction()})
	}
	return out, nil
}

// Wear integrates a battery-wear model along the profile and returns the
// equivalent full cycles consumed (see ev.WearModel). Dwell intervals add
// no wear, matching Energy's no-idle-load convention.
func (p *Profile) Wear(m *ev.WearModel, gradeAt func(pos float64) float64) (float64, error) {
	if m == nil {
		return 0, fmt.Errorf("profile: nil wear model")
	}
	var cycles float64
	for i := 1; i < len(p.pts); i++ {
		a, b := p.pts[i-1], p.pts[i]
		dt := b.T - a.T
		ds := b.Pos - a.Pos
		if dt <= 0 || ds <= 0 {
			continue
		}
		theta := 0.0
		if gradeAt != nil {
			theta = gradeAt((a.Pos + b.Pos) / 2)
		}
		vAvg := (a.V + b.V) / 2
		acc := (b.V - a.V) / dt
		cycles += m.StepWear(m.Pack.ChargeRate(vAvg, acc, theta), dt)
	}
	return cycles, nil
}
