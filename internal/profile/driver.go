package profile

import (
	"fmt"
	"math"

	"evvo/internal/road"
	"evvo/internal/units"
)

// Style parameterizes a human driving style for the reference driver.
type Style struct {
	// Name labels the style in reports.
	Name string
	// AccelMS2 is the comfortable acceleration magnitude (m/s²).
	AccelMS2 float64
	// DecelMS2 is the comfortable braking magnitude (m/s², positive).
	DecelMS2 float64
	// SpeedFraction is the fraction of the local maximum speed limit the
	// driver cruises at, in (0, 1].
	SpeedFraction float64
	// StopSignWaitSec is the dwell at a stop sign.
	StopSignWaitSec float64
	// WanderAmpMS and WanderPeriodSec add the pedal oscillation real
	// drivers exhibit: the cruise target wanders sinusoidally by ±amp
	// with the given period. Collected traces (the paper's Fig. 7(a))
	// are visibly jagged; each oscillation leaks the unrecovered part of
	// its kinetic-energy swing, which is a large share of the human
	// vs optimal energy gap. Zero disables wander.
	WanderAmpMS, WanderPeriodSec float64
}

// Mild returns the paper's "mild driving" style: gradual acceleration,
// cruising near the lower speed band (Section III-A-3).
func Mild() Style {
	return Style{
		Name:            "mild",
		AccelMS2:        0.8,
		DecelMS2:        1.0,
		SpeedFraction:   0.72, // ≈43 km/h in a 60 km/h zone, near the 40 km/h band
		StopSignWaitSec: 2.0,
		WanderAmpMS:     1.0,
		WanderPeriodSec: 40,
	}
}

// Fast returns the paper's "fast driving" style: brisk legal acceleration,
// cruising at the limit.
func Fast() Style {
	return Style{
		Name:            "fast",
		AccelMS2:        2.3,
		DecelMS2:        1.5,
		SpeedFraction:   1.0,
		StopSignWaitSec: 1.0,
		WanderAmpMS:     1.4,
		WanderPeriodSec: 25,
	}
}

// Validate reports whether the style is usable.
func (s Style) Validate() error {
	switch {
	case s.AccelMS2 <= 0:
		return fmt.Errorf("profile: style %q accel %.2f must be positive", s.Name, s.AccelMS2)
	case s.DecelMS2 <= 0:
		return fmt.Errorf("profile: style %q decel %.2f must be positive", s.Name, s.DecelMS2)
	case s.SpeedFraction <= 0 || s.SpeedFraction > 1:
		return fmt.Errorf("profile: style %q speed fraction %.2f must be in (0, 1]", s.Name, s.SpeedFraction)
	case s.StopSignWaitSec < 0:
		return fmt.Errorf("profile: style %q stop wait %.1f must be non-negative", s.Name, s.StopSignWaitSec)
	case s.WanderAmpMS < 0:
		return fmt.Errorf("profile: style %q wander amplitude %.1f must be non-negative", s.Name, s.WanderAmpMS)
	case s.WanderAmpMS > 0 && s.WanderPeriodSec <= 0:
		return fmt.Errorf("profile: style %q wander needs a positive period, got %.1f", s.Name, s.WanderPeriodSec)
	}
	return nil
}

// QueueDelayFunc returns the extra dwell (seconds) a driver stopped at a
// signal waits *after* the light turns green before it can move — the time
// for the queue ahead to start flowing. arrival is the absolute arrival time
// at the stop line. Nil means no queue delay.
type QueueDelayFunc func(c road.Control, arrival float64) float64

// DriveConfig configures a reference drive.
type DriveConfig struct {
	Route *road.Route
	Style Style
	// DepartTime is the absolute departure time (s); signal phases are
	// evaluated against absolute time.
	DepartTime float64
	// StepSec is the integration step (default 0.1 s).
	StepSec float64
	// QueueDelay optionally injects queue-discharge waits at signals.
	QueueDelay QueueDelayFunc
}

// maxDriveSec bounds a drive so a malformed setup (e.g. a signal that is
// effectively never green) cannot loop forever.
const maxDriveSec = 4 * units.SecPerHour

// Drive simulates a human-style drive along the route and returns the
// trajectory. The driver cruises at SpeedFraction of the local limit,
// brakes for stop signs, red lights and the destination, dwells through
// red phases (plus any queue delay), and ends at rest at the route end.
func Drive(cfg DriveConfig) (*Profile, error) {
	if cfg.Route == nil {
		return nil, fmt.Errorf("profile: drive needs a route")
	}
	if err := cfg.Style.Validate(); err != nil {
		return nil, err
	}
	dt := cfg.StepSec
	if dt == 0 {
		dt = 0.1
	}
	if dt <= 0 {
		return nil, fmt.Errorf("profile: step %.3f s must be positive", dt)
	}

	r := cfg.Route
	type stopPoint struct {
		pos     float64
		control *road.Control // nil for the destination
	}
	controls := r.Controls()

	var pts []Point
	t, pos, v := cfg.DepartTime, 0.0, 0.0
	pts = append(pts, Point{T: t, Pos: pos, V: v})
	nextControl := 0 // index of the first control not yet passed

	// dwellUntil pauses the vehicle in place until the absolute time end.
	dwellUntil := func(end float64) {
		for t < end {
			t += dt
			pts = append(pts, Point{T: t, Pos: pos, V: 0})
		}
	}

	for pos < r.LengthM() {
		if t-cfg.DepartTime > maxDriveSec {
			return nil, fmt.Errorf("profile: drive exceeded %.0f s; route likely impassable", maxDriveSec)
		}
		// The nearest mandatory stop: destination, stop sign, or a signal
		// currently red.
		stop := stopPoint{pos: r.LengthM()}
		for i := nextControl; i < len(controls); i++ {
			c := controls[i]
			if c.PositionM <= pos {
				continue
			}
			mustStop := c.Kind == road.ControlStopSign
			if c.Kind == road.ControlSignal {
				green, _ := c.Timing.PhaseAt(t)
				mustStop = !green
				if mustStop {
					// A light that flips red inside the emergency braking
					// envelope is a late yellow: the driver runs through
					// rather than stopping unphysically hard.
					stopDist := v * v / (2 * 2 * cfg.Style.DecelMS2)
					if stopDist > c.PositionM-pos {
						mustStop = false
					}
				}
			}
			if mustStop {
				stop = stopPoint{pos: c.PositionM, control: &controls[i]}
			}
			break // only the nearest control constrains the driver
		}

		_, maxMS := r.SpeedLimits(pos)
		target := cfg.Style.SpeedFraction * maxMS
		if cfg.Style.WanderAmpMS > 0 {
			target += cfg.Style.WanderAmpMS * math.Sin(2*math.Pi*(t-cfg.DepartTime)/cfg.Style.WanderPeriodSec)
			if target > maxMS {
				target = maxMS
			}
			if target < 0 {
				target = 0
			}
		}

		dist := stop.pos - pos

		// Arrival at the stop line: close enough that the next step would
		// cross it and already crawling. Snap, then handle the stop.
		if dist <= math.Max(0.3, 1.5*v*dt) && v <= 2.5*cfg.Style.DecelMS2*dt+0.3 {
			pos = stop.pos
			v = 0
			t += dt
			pts = append(pts, Point{T: t, Pos: pos, V: 0})
			if stop.control == nil {
				break // destination reached
			}
			c := stop.control
			switch c.Kind {
			case road.ControlStopSign:
				dwellUntil(t + cfg.Style.StopSignWaitSec)
			case road.ControlSignal:
				arrival := t
				green, _ := c.Timing.PhaseAt(t)
				if !green {
					start, _ := c.Timing.NextGreenWindow(t)
					dwellUntil(start)
				}
				if cfg.QueueDelay != nil {
					dwellUntil(t + math.Max(0, cfg.QueueDelay(*c, arrival)))
				}
			}
			for nextControl < len(controls) && controls[nextControl].PositionM <= pos {
				nextControl++
			}
			continue
		}

		// Speed admissible to still stop at the stop point with comfortable
		// braking: v² = 2·decel·dist, with one step's travel as margin so
		// the discrete trajectory stays under the continuous envelope.
		vBrake := math.Sqrt(2 * cfg.Style.DecelMS2 * math.Max(0, dist-v*dt))
		vDes := math.Min(target, vBrake)

		// Step the speed toward vDes with bounded accel/decel.
		switch {
		case v < vDes:
			v = math.Min(vDes, v+cfg.Style.AccelMS2*dt)
		case v > vDes:
			v = math.Max(vDes, v-cfg.Style.DecelMS2*dt)
		}
		adv := v * dt
		if adv > dist {
			adv = dist // do not overshoot the stop line
			v = 0
		}
		pos += adv
		t += dt
		pts = append(pts, Point{T: t, Pos: pos, V: v})
		// Mark passed controls.
		for nextControl < len(controls) && controls[nextControl].PositionM <= pos {
			nextControl++
		}
	}
	// Terminal: come to rest at the destination.
	if v > 0 {
		pts = append(pts, Point{T: t, Pos: r.LengthM(), V: 0})
	}
	return New(pts)
}
