package profile

import (
	"math"
	"testing"

	"evvo/internal/ev"
	"evvo/internal/road"
)

func driveUS25(t *testing.T, style Style, depart float64, qd QueueDelayFunc) *Profile {
	t.Helper()
	p, err := Drive(DriveConfig{Route: road.US25(), Style: style, DepartTime: depart, QueueDelay: qd})
	if err != nil {
		t.Fatalf("Drive(%s): %v", style.Name, err)
	}
	return p
}

func TestDriveValidation(t *testing.T) {
	if _, err := Drive(DriveConfig{Style: Mild()}); err == nil {
		t.Fatal("nil route accepted")
	}
	if _, err := Drive(DriveConfig{Route: road.US25(), Style: Style{}}); err == nil {
		t.Fatal("zero style accepted")
	}
	if _, err := Drive(DriveConfig{Route: road.US25(), Style: Mild(), StepSec: -1}); err == nil {
		t.Fatal("negative step accepted")
	}
}

func TestStyleValidate(t *testing.T) {
	for _, s := range []Style{Mild(), Fast()} {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
	bad := Mild()
	bad.SpeedFraction = 1.5
	if err := bad.Validate(); err == nil {
		t.Fatal("speed fraction > 1 accepted")
	}
	bad = Fast()
	bad.StopSignWaitSec = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative stop wait accepted")
	}
}

func TestDriveCoversRouteAndEndsAtRest(t *testing.T) {
	for _, style := range []Style{Mild(), Fast()} {
		p := driveUS25(t, style, 0, nil)
		if !almost(p.Distance(), 4200, 1.0) {
			t.Errorf("%s: distance %v, want 4200", style.Name, p.Distance())
		}
		pts := p.Points()
		if last := pts[len(pts)-1]; last.V != 0 {
			t.Errorf("%s: final speed %v, want 0", style.Name, last.V)
		}
		if first := pts[0]; first.V != 0 || first.Pos != 0 {
			t.Errorf("%s: first point %+v, want standing start at origin", style.Name, first)
		}
	}
}

func TestDriveRespectsSpeedLimit(t *testing.T) {
	for _, style := range []Style{Mild(), Fast()} {
		p := driveUS25(t, style, 0, nil)
		if pos, v := p.ViolatesLimits(road.US25(), 0.05); v {
			t.Errorf("%s: exceeds limit at %v m", style.Name, pos)
		}
	}
}

func TestDriveStopsAtStopSign(t *testing.T) {
	p := driveUS25(t, Fast(), 0, nil)
	// Speed at the stop sign position must be ~0.
	if v := p.SpeedAtPos(490); v > 0.3 {
		t.Fatalf("speed at stop sign = %v, want ≈0", v)
	}
}

func TestMildSlowerThanFast(t *testing.T) {
	mild := driveUS25(t, Mild(), 0, nil)
	fast := driveUS25(t, Fast(), 0, nil)
	if mild.MaxSpeed() >= fast.MaxSpeed() {
		t.Fatalf("mild max %v should be below fast max %v", mild.MaxSpeed(), fast.MaxSpeed())
	}
}

func TestFastUsesMoreEnergyThanMild(t *testing.T) {
	// Paper Fig. 7(b): fast driving consumes more than mild driving.
	mild := driveUS25(t, Mild(), 0, nil)
	fast := driveUS25(t, Fast(), 0, nil)
	params := ev.SparkEV()
	em, err := mild.Energy(params, nil)
	if err != nil {
		t.Fatal(err)
	}
	ef, err := fast.Energy(params, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ef <= em {
		t.Fatalf("fast energy %v Ah should exceed mild %v Ah", ef, em)
	}
}

func TestDriveWaitsForRedLight(t *testing.T) {
	// Depart so that a fast driver hits light-1 (1800 m) during red.
	// At 60 km/h ≈ 16.7 m/s, 1800 m takes ≈ 115 s. Cycle is 30R/30G: 115 mod
	// 60 = 55 → green. Shift departure by 20 s → arrival ≈ 135 ≡ 15 (red).
	p := driveUS25(t, Fast(), 20, nil)
	arrive := p.TimeAtPos(1800)
	cross := p.TimeAtPos(1801) // when the vehicle actually leaves the line
	timing := road.SignalTiming{RedSec: 30, GreenSec: 30}
	if green, _ := timing.PhaseAt(arrive); green {
		t.Fatalf("test setup: driver should arrive at light-1 during red, got green at t=%v", arrive)
	}
	if green, _ := timing.PhaseAt(cross); !green {
		t.Fatalf("driver crossed light-1 during red at t=%v", cross)
	}
	if v := p.SpeedAtPos(1800); v > 0.5 {
		t.Fatalf("expected a stop at light-1, speed = %v", v)
	}
}

func TestDriveQueueDelayAddsDwell(t *testing.T) {
	const extra = 7.0
	var sawControl string
	qd := func(c road.Control, arrival float64) float64 {
		sawControl = c.Name
		return extra
	}
	base := driveUS25(t, Fast(), 20, nil)
	delayed := driveUS25(t, Fast(), 20, qd)
	if sawControl == "" {
		t.Fatal("queue delay callback never invoked")
	}
	if delayed.Duration() < base.Duration()+extra-1 {
		t.Fatalf("queue delay did not extend trip: base %v, delayed %v", base.Duration(), delayed.Duration())
	}
}

func TestDriveNegativeQueueDelayIgnored(t *testing.T) {
	qd := func(road.Control, float64) float64 { return -100 }
	base := driveUS25(t, Fast(), 20, nil)
	p := driveUS25(t, Fast(), 20, qd)
	if math.Abs(p.Duration()-base.Duration()) > 1 {
		t.Fatalf("negative delay changed trip time: %v vs %v", p.Duration(), base.Duration())
	}
}

func TestDriveGreenPassThrough(t *testing.T) {
	// A route with a single always-green signal: the driver never stops.
	r, err := road.NewRoute(road.RouteConfig{
		LengthM: 2000, DefaultMaxMS: 20,
		Controls: []road.Control{{
			Kind: road.ControlSignal, PositionM: 1000,
			Timing: road.SignalTiming{RedSec: 0, GreenSec: 60}, Name: "always-green",
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := Drive(DriveConfig{Route: r, Style: Fast()})
	if err != nil {
		t.Fatal(err)
	}
	if v := p.SpeedAtPos(1000); v < 10 {
		t.Fatalf("driver slowed to %v at an always-green light", v)
	}
	if stops := p.Stops(0.2, 1); stops != 0 {
		t.Fatalf("driver made %d stops on an open road", stops)
	}
}

func TestDriveImpassableRouteErrors(t *testing.T) {
	// A signal with a monstrous red phase: Drive must give up, not hang.
	r, err := road.NewRoute(road.RouteConfig{
		LengthM: 2000, DefaultMaxMS: 20,
		Controls: []road.Control{{
			Kind: road.ControlSignal, PositionM: 1000,
			Timing: road.SignalTiming{RedSec: 5 * 3600, GreenSec: 1}, Name: "stuck",
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Drive(DriveConfig{Route: r, Style: Fast(), StepSec: 0.5}); err == nil {
		t.Fatal("impassable route should error")
	}
}

func TestDriveDeterministic(t *testing.T) {
	a := driveUS25(t, Mild(), 0, nil)
	b := driveUS25(t, Mild(), 0, nil)
	pa, pb := a.Points(), b.Points()
	if len(pa) != len(pb) {
		t.Fatalf("runs differ in length: %d vs %d", len(pa), len(pb))
	}
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("runs differ at %d: %+v vs %+v", i, pa[i], pb[i])
		}
	}
}

func TestDriveDepartTimeShiftsProfile(t *testing.T) {
	p := driveUS25(t, Mild(), 100, nil)
	if p.Points()[0].T != 100 {
		t.Fatalf("first point T = %v, want 100", p.Points()[0].T)
	}
}
