package profile

import (
	"math"
	"testing"
	"testing/quick"

	"evvo/internal/ev"
	"evvo/internal/road"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// rampProfile accelerates uniformly from rest to 20 m/s over 20 s, then
// cruises 20 s.
func rampProfile(t *testing.T) *Profile {
	t.Helper()
	var pts []Point
	for i := 0; i <= 200; i++ {
		tt := float64(i) * 0.1
		v := math.Min(20, tt)
		var pos float64
		if tt <= 20 {
			pos = 0.5 * tt * tt
		} else {
			pos = 200 + 20*(tt-20)
		}
		_ = v
		pts = append(pts, Point{T: tt, Pos: pos, V: v})
	}
	p, err := New(pts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return p
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name string
		pts  []Point
	}{
		{"too few", []Point{{T: 0}}},
		{"time backwards", []Point{{T: 1, Pos: 0, V: 0}, {T: 0, Pos: 1, V: 1}}},
		{"position backwards", []Point{{T: 0, Pos: 5, V: 0}, {T: 1, Pos: 4, V: 1}}},
		{"negative speed", []Point{{T: 0, Pos: 0, V: -1}, {T: 1, Pos: 1, V: 1}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := New(tc.pts); err == nil {
				t.Fatal("accepted invalid points")
			}
		})
	}
}

func TestNewCopiesInput(t *testing.T) {
	pts := []Point{{T: 0, Pos: 0, V: 0}, {T: 1, Pos: 1, V: 1}}
	p, err := New(pts)
	if err != nil {
		t.Fatal(err)
	}
	pts[0].V = 99
	if p.Points()[0].V != 0 {
		t.Fatal("New did not copy input")
	}
	got := p.Points()
	got[1].V = 42
	if p.Points()[1].V != 1 {
		t.Fatal("Points exposed internal slice")
	}
}

func TestDurationDistanceAverages(t *testing.T) {
	p := rampProfile(t)
	if !almost(p.Duration(), 20, 1e-9) {
		t.Fatalf("Duration = %v, want 20", p.Duration())
	}
	if !almost(p.Distance(), 200+20*0, 300) { // 200 accel + 0..? sanity only
		t.Fatalf("Distance = %v", p.Distance())
	}
	if p.MaxSpeed() != 20 {
		t.Fatalf("MaxSpeed = %v, want 20", p.MaxSpeed())
	}
	if avg := p.AverageSpeed(); avg <= 0 || avg > 20 {
		t.Fatalf("AverageSpeed = %v out of range", avg)
	}
}

func TestSpeedAtPosInterpolation(t *testing.T) {
	p, err := New([]Point{
		{T: 0, Pos: 0, V: 0},
		{T: 10, Pos: 100, V: 20},
		{T: 20, Pos: 300, V: 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.SpeedAtPos(50); !almost(got, 10, 1e-9) {
		t.Fatalf("SpeedAtPos(50) = %v, want 10", got)
	}
	if got := p.SpeedAtPos(-5); got != 0 {
		t.Fatalf("SpeedAtPos before start = %v, want 0", got)
	}
	if got := p.SpeedAtPos(1000); got != 20 {
		t.Fatalf("SpeedAtPos past end = %v, want 20", got)
	}
}

func TestSpeedAtPosDwell(t *testing.T) {
	// A dwell (same position, multiple times) should not break lookup.
	p, err := New([]Point{
		{T: 0, Pos: 0, V: 10},
		{T: 5, Pos: 50, V: 0},
		{T: 15, Pos: 50, V: 0},
		{T: 25, Pos: 150, V: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.SpeedAtPos(50); got != 0 {
		t.Fatalf("SpeedAtPos at dwell = %v, want 0", got)
	}
	if got := p.TimeAtPos(50); !almost(got, 5, 1e-9) {
		t.Fatalf("TimeAtPos(50) = %v, want first arrival 5", got)
	}
}

func TestTimeAtPosMonotone(t *testing.T) {
	p := rampProfile(t)
	prev := -1.0
	for pos := 0.0; pos <= p.Distance(); pos += 10 {
		tt := p.TimeAtPos(pos)
		if tt < prev {
			t.Fatalf("TimeAtPos not monotone at %v: %v < %v", pos, tt, prev)
		}
		prev = tt
	}
}

func TestSpeedAtTime(t *testing.T) {
	p := rampProfile(t)
	if got := p.SpeedAtTime(10); !almost(got, 10, 0.2) {
		t.Fatalf("SpeedAtTime(10) = %v, want ≈10", got)
	}
	if got := p.SpeedAtTime(-1); got != 0 {
		t.Fatalf("SpeedAtTime before start = %v, want 0", got)
	}
	if got := p.SpeedAtTime(999); got != 20 {
		t.Fatalf("SpeedAtTime past end = %v, want 20", got)
	}
}

func TestStopsCounting(t *testing.T) {
	p, err := New([]Point{
		{T: 0, Pos: 0, V: 0}, // initial standstill: not a stop
		{T: 5, Pos: 50, V: 10},
		{T: 10, Pos: 100, V: 0}, // stop 1 (5 s)
		{T: 15, Pos: 100, V: 0},
		{T: 20, Pos: 150, V: 10},
		{T: 22, Pos: 170, V: 0}, // blip below threshold duration
		{T: 22.5, Pos: 172, V: 10},
		{T: 30, Pos: 250, V: 0}, // final stop: not counted
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Stops(0.1, 2); got != 1 {
		t.Fatalf("Stops = %d, want 1", got)
	}
	if got := p.Stops(0.1, 0.1); got != 2 {
		t.Fatalf("Stops with short minDur = %d, want 2", got)
	}
}

func TestEnergyPositiveForDrive(t *testing.T) {
	p := rampProfile(t)
	ah, err := p.Energy(ev.SparkEV(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if ah <= 0 {
		t.Fatalf("Energy = %v Ah, want positive for an accelerating drive", ah)
	}
	mah, err := p.EnergyMAh(ev.SparkEV(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(mah, ah*1000, 1e-9) {
		t.Fatalf("EnergyMAh = %v, want %v", mah, ah*1000)
	}
}

func TestEnergyRejectsBadParams(t *testing.T) {
	p := rampProfile(t)
	if _, err := p.Energy(ev.Params{}, nil); err == nil {
		t.Fatal("Energy accepted invalid params")
	}
}

func TestEnergyUphillCostsMore(t *testing.T) {
	p := rampProfile(t)
	flat, err := p.Energy(ev.SparkEV(), nil)
	if err != nil {
		t.Fatal(err)
	}
	up, err := p.Energy(ev.SparkEV(), func(float64) float64 { return 0.03 })
	if err != nil {
		t.Fatal(err)
	}
	if up <= flat {
		t.Fatalf("uphill energy %v should exceed flat %v", up, flat)
	}
}

func TestEnergyDwellConsumesNothing(t *testing.T) {
	moving, err := New([]Point{{T: 0, Pos: 0, V: 10}, {T: 10, Pos: 100, V: 10}})
	if err != nil {
		t.Fatal(err)
	}
	withDwell, err := New([]Point{
		{T: 0, Pos: 0, V: 10}, {T: 10, Pos: 100, V: 10},
		{T: 60, Pos: 100, V: 10}, // 50 s dwell (same pos)
	})
	if err != nil {
		t.Fatal(err)
	}
	e1, _ := moving.Energy(ev.SparkEV(), nil)
	e2, _ := withDwell.Energy(ev.SparkEV(), nil)
	if !almost(e1, e2, 1e-12) {
		t.Fatalf("dwell changed energy: %v vs %v", e1, e2)
	}
}

func TestResampleByDistance(t *testing.T) {
	p := rampProfile(t)
	r, err := p.ResampleByDistance(25)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(r.Distance(), p.Distance(), 1e-6) {
		t.Fatalf("resample changed distance: %v vs %v", r.Distance(), p.Distance())
	}
	if !almost(r.Duration(), p.Duration(), 0.2) {
		t.Fatalf("resample changed duration: %v vs %v", r.Duration(), p.Duration())
	}
	if _, err := p.ResampleByDistance(0); err == nil {
		t.Fatal("zero step accepted")
	}
}

// Property: resampling at any positive step preserves endpoints.
func TestPropResamplePreservesEndpoints(t *testing.T) {
	p := rampProfile(t)
	f := func(stepRaw float64) bool {
		step := math.Mod(math.Abs(stepRaw), 100) + 1
		r, err := p.ResampleByDistance(step)
		if err != nil {
			return false
		}
		pts := r.Points()
		return almost(pts[0].Pos, 0, 1e-9) && almost(pts[len(pts)-1].Pos, p.Distance(), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestViolatesLimits(t *testing.T) {
	r := road.US25()
	ok, err := New([]Point{{T: 0, Pos: 0, V: 0}, {T: 100, Pos: 4200, V: road.KmhToMs(55)}})
	if err != nil {
		t.Fatal(err)
	}
	if pos, v := ok.ViolatesLimits(r, 0.1); v {
		t.Fatalf("legal profile flagged at %v", pos)
	}
	bad, err := New([]Point{{T: 0, Pos: 0, V: 0}, {T: 100, Pos: 4200, V: road.KmhToMs(80)}})
	if err != nil {
		t.Fatal(err)
	}
	if _, v := bad.ViolatesLimits(r, 0.1); !v {
		t.Fatal("speeding profile not flagged")
	}
}

func TestSOCTrace(t *testing.T) {
	p := rampProfile(t)
	trace, err := p.SOCTrace(ev.SparkEV(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) != p.Len() {
		t.Fatalf("trace length %d, want %d", len(trace), p.Len())
	}
	if trace[0].SOC != 1 {
		t.Fatalf("initial SOC %v, want 1 (full pack)", trace[0].SOC)
	}
	last := trace[len(trace)-1]
	if last.SOC >= 1 || last.SOC <= 0 {
		t.Fatalf("final SOC %v out of range", last.SOC)
	}
	// SOC never increases beyond full and never goes negative; the net
	// drop must equal the profile's net energy.
	for i := 1; i < len(trace); i++ {
		if trace[i].SOC < 0 || trace[i].SOC > 1 {
			t.Fatalf("SOC %v out of [0,1] at %d", trace[i].SOC, i)
		}
	}
	ah, err := p.Energy(ev.SparkEV(), nil)
	if err != nil {
		t.Fatal(err)
	}
	wantFinal := 1 - ah/ev.SparkEV().PackCapacityAh
	if !almost(last.SOC, wantFinal, 1e-9) {
		t.Fatalf("final SOC %v inconsistent with Energy (%v)", last.SOC, wantFinal)
	}
	if _, err := p.SOCTrace(ev.Params{}, nil); err == nil {
		t.Fatal("invalid params accepted")
	}
}

func TestWearIntegration(t *testing.T) {
	p := rampProfile(t)
	m, err := ev.NewWearModel(ev.SparkEV())
	if err != nil {
		t.Fatal(err)
	}
	w, err := p.Wear(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if w <= 0 || w > 0.1 {
		t.Fatalf("trip wear %v cycles implausible", w)
	}
	if _, err := p.Wear(nil, nil); err == nil {
		t.Fatal("nil model accepted")
	}
}

func TestWearPunishesHarshDriving(t *testing.T) {
	// Same distance and similar speeds, but one profile oscillates: the
	// oscillating trip must wear the pack more per the C-rate stress.
	smooth, err := New([]Point{
		{T: 0, Pos: 0, V: 15}, {T: 40, Pos: 600, V: 15}, {T: 80, Pos: 1200, V: 15},
	})
	if err != nil {
		t.Fatal(err)
	}
	var pts []Point
	for i := 0; i <= 80; i++ {
		tt := float64(i)
		v := 15 + 5*math.Sin(tt/3)
		pts = append(pts, Point{T: tt, Pos: 15 * tt, V: v})
	}
	jagged, err := New(pts)
	if err != nil {
		t.Fatal(err)
	}
	m, err := ev.NewWearModel(ev.SparkEV())
	if err != nil {
		t.Fatal(err)
	}
	ws, err := smooth.Wear(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	wj, err := jagged.Wear(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if wj <= ws {
		t.Fatalf("oscillating wear %v not above smooth %v", wj, ws)
	}
}
